// EventFn: the simulator's callback slot — a type-erased void() callable tuned
// for the DES hot path, where std::function's generality is pure overhead.
//
// Almost every event callback in this tree is a tiny capture of one or two
// pointers ([this], [this, &v]). For those, EventFn stores the closure inline in
// a 24-byte buffer and remembers a single invoke pointer: construction is a
// memcpy, a move is a memcpy, destruction is free, and firing is one indirect
// call. std::function, by contrast, routes every move and destroy through its
// manager function — three to five extra indirect calls per scheduled event,
// which profiling showed dominating BM_EventScheduleFire (docs/PERFORMANCE.md).
//
// Callables that are too large, not trivially copyable, or not trivially
// destructible (e.g. scheduling a std::function itself) are boxed on the heap —
// same semantics, one allocation, still no manager dispatch. The inline path is
// chosen at compile time per callable type, so this is invisible at call sites:
// anything invocable as void() converts implicitly, exactly like before.

#ifndef VSCALE_SRC_SIM_EVENT_FN_H_
#define VSCALE_SRC_SIM_EVENT_FN_H_

#include <cstddef>
#include <cstring>
#include <new>
#include <type_traits>
#include <utility>

namespace vscale {

class EventFn {
 public:
  static constexpr size_t kInlineSize = 24;

  EventFn() = default;

  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::decay_t<F>, EventFn> &&
                std::is_invocable_r_v<void, std::decay_t<F>&>>>
  EventFn(F&& f) {  // NOLINT(google-explicit-constructor): drop-in for lambdas
    Emplace(std::forward<F>(f));
  }

  // Constructs the callable in place in an *empty* EventFn. This is the slab's
  // scheduling fast path: the simulator emplaces straight into a recycled slot,
  // so a schedule involves no EventFn temporaries and no buffer moves at all.
  template <typename F>
  void Emplace(F&& f) {
    using Fn = std::decay_t<F>;
    if constexpr (sizeof(Fn) <= kInlineSize &&
                  std::is_trivially_copyable_v<Fn> &&
                  std::is_trivially_destructible_v<Fn>) {
      ::new (static_cast<void*>(buf_)) Fn(std::forward<F>(f));
      invoke_ = [](void* p) { (*std::launder(reinterpret_cast<Fn*>(p)))(); };
    } else {
      Fn* boxed = new Fn(std::forward<F>(f));
      std::memcpy(buf_, &boxed, sizeof(boxed));
      invoke_ = [](void* p) { (**std::launder(reinterpret_cast<Fn**>(p)))(); };
      destroy_ = [](void* p) { delete *std::launder(reinterpret_cast<Fn**>(p)); };
    }
  }

  EventFn(EventFn&& other) noexcept
      : invoke_(other.invoke_), destroy_(other.destroy_) {
    std::memcpy(buf_, other.buf_, kInlineSize);
    other.invoke_ = nullptr;
    other.destroy_ = nullptr;
  }

  EventFn& operator=(EventFn&& other) noexcept {
    if (this != &other) {
      Reset();
      invoke_ = other.invoke_;
      destroy_ = other.destroy_;
      std::memcpy(buf_, other.buf_, kInlineSize);
      other.invoke_ = nullptr;
      other.destroy_ = nullptr;
    }
    return *this;
  }

  EventFn(const EventFn&) = delete;
  EventFn& operator=(const EventFn&) = delete;

  ~EventFn() { Reset(); }

  explicit operator bool() const { return invoke_ != nullptr; }

  void operator()() { invoke_(buf_); }

  // Releases the held callable (boxed storage is freed); leaves *this empty.
  void Reset() {
    if (destroy_ != nullptr) {
      destroy_(buf_);
      destroy_ = nullptr;
    }
    invoke_ = nullptr;
  }

 private:
  // Zero-initialized so whole-buffer relocation memcpys never read uninitialized
  // bytes when the stored closure is smaller than the buffer.
  alignas(alignof(std::max_align_t)) unsigned char buf_[kInlineSize] = {};
  void (*invoke_)(void*) = nullptr;
  void (*destroy_)(void*) = nullptr;  // non-null only for boxed callables
};

}  // namespace vscale

#endif  // VSCALE_SRC_SIM_EVENT_FN_H_
