// Discrete-event simulation engine.
//
// A Simulator owns virtual time and a priority queue of (time, sequence) ordered events.
// Events are plain std::function callbacks; scheduling returns an EventId that can be
// cancelled. Ties are broken by schedule order, so runs are fully deterministic.
//
// The two-level scheduler simulation cancels and reschedules events aggressively (every
// settle of a running vCPU), so cancellation stays cheap: cancelled ids go into a
// key-ordered set and are skipped on pop. The bookkeeping containers are deliberately
// *ordered* (std::map/std::set keyed by the monotonically assigned EventId), never
// hashed: the simulator is the root of the repo's bit-determinism argument, and
// unordered containers are the classic way iteration-order nondeterminism sneaks into
// a DES (tools/det_lint enforces this tree-wide).

#ifndef VSCALE_SRC_SIM_EVENT_QUEUE_H_
#define VSCALE_SRC_SIM_EVENT_QUEUE_H_

#include <cstdint>
#include <functional>
#include <map>
#include <queue>
#include <set>
#include <vector>

#include "src/base/time.h"

namespace vscale {

class Simulator {
 public:
  using EventId = uint64_t;
  static constexpr EventId kInvalidEvent = 0;

  Simulator() = default;
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  TimeNs Now() const { return now_; }

  // Schedules fn at absolute virtual time `when` (>= Now()). Returns a cancellable id.
  EventId ScheduleAt(TimeNs when, std::function<void()> fn);
  EventId ScheduleAfter(TimeNs delay, std::function<void()> fn) {
    return ScheduleAt(now_ + delay, std::move(fn));
  }

  // Cancels a pending event. Safe to call with kInvalidEvent or an already-fired id.
  void Cancel(EventId id);

  // Runs a single event; returns false if the queue is empty.
  bool Step();

  // Runs all events with time <= deadline, then advances Now() to deadline.
  void RunUntil(TimeNs deadline);

  // Runs until the queue empties or `max_events` more events have fired.
  void RunUntilIdle(uint64_t max_events = UINT64_MAX);

  // Runs until `stop` returns true (checked after each event), the queue empties, or
  // the deadline passes. Returns true if `stop` triggered.
  bool RunUntilCondition(const std::function<bool()>& stop, TimeNs deadline);

  size_t pending_events() const { return queue_.size() - cancelled_.size(); }
  uint64_t events_processed() const { return events_processed_; }

 private:
  struct Entry {
    TimeNs when;
    EventId id;
    // Ordering for std::priority_queue (max-heap): invert so earliest fires first.
    bool operator<(const Entry& other) const {
      if (when != other.when) {
        return when > other.when;
      }
      return id > other.id;
    }
  };

  // Pops the next live entry into `out`; returns false when empty.
  bool PopNext(Entry& out);

  TimeNs now_ = 0;
  EventId next_id_ = 1;
  std::priority_queue<Entry> queue_;
  // fn storage parallel to queue entries; erased on fire/cancel-collection. Keyed by
  // the sequential EventId, so lookups are O(log pending) and iteration (never needed,
  // but cheap insurance) is deterministic.
  std::map<EventId, std::function<void()>> callbacks_;
  std::set<EventId> cancelled_;
  uint64_t events_processed_ = 0;
  // Checked builds verify the (when, id) firing order is strictly increasing — the
  // stable tie-break every replay relies on. Dead weight otherwise.
  TimeNs last_fired_when_ = 0;
  EventId last_fired_id_ = 0;
};

// Re-schedules itself at a fixed period until stopped. The callback observes Now().
class PeriodicTask {
 public:
  PeriodicTask(Simulator& sim, TimeNs period, std::function<void()> fn);
  ~PeriodicTask();
  PeriodicTask(const PeriodicTask&) = delete;
  PeriodicTask& operator=(const PeriodicTask&) = delete;

  // First fire happens at Now() + phase (default: one full period from now).
  void Start(TimeNs phase = -1);
  void Stop();
  bool running() const { return running_; }
  TimeNs period() const { return period_; }
  void set_period(TimeNs period) { period_ = period; }

 private:
  void Fire();

  Simulator& sim_;
  TimeNs period_;
  std::function<void()> fn_;
  Simulator::EventId pending_ = Simulator::kInvalidEvent;
  bool running_ = false;
};

}  // namespace vscale

#endif  // VSCALE_SRC_SIM_EVENT_QUEUE_H_
