// Discrete-event simulation engine.
//
// A Simulator owns virtual time and a priority queue of (time, sequence) ordered
// events. Events are plain std::function callbacks; scheduling returns an EventId
// that can be cancelled. Ties are broken by schedule order, so runs are fully
// deterministic.
//
// Hot-path design (docs/PERFORMANCE.md has the full story and the numbers):
//
//  * Slab allocator. Callbacks live in a slab of Nodes indexed by a 32-bit slot,
//    recycled through a LIFO free list — steady-state scheduling performs no heap
//    allocation at all (small callbacks also fit std::function's inline buffer).
//  * Flat binary heap. Pending events are 24-byte {when, seq, slot, gen} entries in
//    a contiguous min-heap ordered by (when, seq) — no per-node allocation, no
//    pointer chasing, and `seq` is the monotonically increasing schedule order that
//    implements the tie-break.
//  * O(1) tombstone Cancel. An EventId packs {generation:32, slot:32}. Each slot
//    carries a generation counter that is bumped whenever the slot is released
//    (fire or cancel), so Cancel is a bounds check plus a generation compare: a
//    match releases the slot immediately; a mismatch means the event already fired
//    (or the slot was recycled) and the call is a no-op. The two-level scheduler
//    simulation cancels and reschedules aggressively (every settle of a running
//    vCPU), which is exactly the traffic this makes nearly free.
//  * Lazy deletion + compaction. A cancelled event's heap entry stays behind as a
//    tombstone (its generation no longer matches the slot's) and is skipped when it
//    surfaces at the root. When tombstones outnumber live entries the heap is
//    compacted in one O(n) filter-and-heapify pass, so cancel-heavy workloads can't
//    bloat it.
//  * Same-tick batching. The run loops drain every event at the current timestamp
//    back-to-back without re-checking the deadline in between (equal-time events
//    cannot overshoot it), keeping the root of the heap hot in cache.
//
// Cancel semantics, pinned by SimulatorTest.CancelSlotReuseIsSafe and
// SimulatorTest.CancelAfterFireAndUnknownIdsAreNoOps: Cancel(kInvalidEvent),
// Cancel of an already-fired id, double Cancel, and Cancel of an id this
// Simulator never issued are all deterministic O(1) no-ops. In particular, the
// generation check guarantees that a stale id can never cancel a *different*
// live event that happens to reuse the same slab slot.
//
// Determinism: the firing order is a pure function of the (when, seq) keys — the
// heap is never iterated, only its root consumed — and all bookkeeping is
// index-based, so no container iteration order or allocator address can leak into
// a run (tools/det_lint polices hashed containers and wall clocks tree-wide).

#ifndef VSCALE_SRC_SIM_EVENT_QUEUE_H_
#define VSCALE_SRC_SIM_EVENT_QUEUE_H_

#include <cassert>
#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "src/base/check.h"
#include "src/base/time.h"
#include "src/base/trace.h"
#include "src/sim/event_fn.h"

namespace vscale {

class Simulator {
 public:
  using EventId = uint64_t;
  static constexpr EventId kInvalidEvent = 0;
  // Below this heap size compaction is pointless: skimming a handful of
  // tombstones off the root is cheaper than a rebuild.
  static constexpr size_t kCompactMinHeapSize = 64;

  Simulator();
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  TimeNs Now() const { return now_; }

  // Schedules fn at absolute virtual time `when` (>= Now()). Returns a
  // cancellable id. Templated so the callable is constructed directly inside a
  // recycled slab slot — the hot path materializes no EventFn temporaries.
  template <typename F>
  EventId ScheduleAt(TimeNs when, F&& fn);
  template <typename F>
  EventId ScheduleAfter(TimeNs delay, F&& fn) {
    return ScheduleAt(now_ + delay, std::forward<F>(fn));
  }

  // Cancels a pending event in O(1). Safe to call with kInvalidEvent, an
  // already-fired or already-cancelled id, or an id this Simulator never issued:
  // all are deterministic no-ops (see the header comment for the pinned contract).
  void Cancel(EventId id);

  // Exactly Cancel(id) followed by ScheduleAt(when, fn) — same slot reuse (the
  // free list is LIFO, so the cancelled slot is the one a scheduling would pop),
  // same generation bump, same sequence draw, hence a bit-identical firing
  // order — minus the free-list round trip and the second id decode. This is
  // the scheduler's rearm idiom (every settle of a running vCPU moves its
  // advance event), which is why it rates a fused fast path.
  template <typename F>
  EventId Reschedule(EventId id, TimeNs when, F&& fn);

  // Runs a single event; returns false if the queue is empty.
  bool Step();

  // Runs all events with time <= deadline, then advances Now() to deadline.
  void RunUntil(TimeNs deadline);

  // Runs until the queue empties or `max_events` more events have fired.
  void RunUntilIdle(uint64_t max_events = UINT64_MAX);

  // Runs until `stop` returns true (checked after each event), the queue empties, or
  // the deadline passes. Returns true if `stop` triggered.
  bool RunUntilCondition(const std::function<bool()>& stop, TimeNs deadline);

  size_t pending_events() const { return live_; }
  uint64_t events_processed() const { return events_processed_; }

 private:
  // A pending occurrence in the flat min-heap. `seq` is the schedule order (the
  // tie-break); `slot`/`gen` locate and validate the callback in the slab.
  struct HeapEntry {
    TimeNs when;
    uint64_t seq;
    uint32_t slot;
    uint32_t gen;
  };

  // Slab node: callback storage plus the generation that outstanding EventIds and
  // heap entries are validated against. `gen` starts at 1 and is bumped on every
  // release, so a packed id is never kInvalidEvent and never matches twice.
  struct Node {
    EventFn fn;
    uint32_t gen = 1;
  };

  // The slab is chunked (not one contiguous vector) so Node addresses are stable
  // across growth. That lets FireTop invoke a callback *in place* — no defensive
  // move-out — because a callback that schedules new events can never relocate
  // the closure it is currently executing.
  static constexpr uint32_t kSlabChunkShift = 8;  // 256 nodes per chunk
  static constexpr uint32_t kSlabChunkSize = 1u << kSlabChunkShift;

  Node& NodeAt(uint32_t slot) {
    return chunks_[slot >> kSlabChunkShift][slot & (kSlabChunkSize - 1)];
  }
  const Node& NodeAt(uint32_t slot) const {
    return chunks_[slot >> kSlabChunkShift][slot & (kSlabChunkSize - 1)];
  }

  static EventId Pack(uint32_t slot, uint32_t gen) {
    return (static_cast<EventId>(gen) << 32) | slot;
  }

  // Min-heap order: earliest (when, seq) at the root.
  static bool Earlier(const HeapEntry& a, const HeapEntry& b) {
    return a.when != b.when ? a.when < b.when : a.seq < b.seq;
  }

  bool Stale(const HeapEntry& e) const { return NodeAt(e.slot).gen != e.gen; }

  // The schedule/cancel/fire path is defined inline below the class: these run
  // tens of millions of times per simulated second, and letting them inline into
  // callers (RearmAdvance cancels + reschedules on every settle) is worth several
  // ns per event — see docs/PERFORMANCE.md for the measured effect.
  void SiftUp(size_t i);
  void SiftDown(size_t i);
  void PopRoot();      // removes heap_[0], restores heap order
  void SkimStale();    // pops tombstones off the root until it is live or empty
  void FireTop();      // fires heap_[0] (must be live): advance clock, run callback
  void CompactHeap();  // one O(n) filter-and-heapify pass dropping all tombstones

  TimeNs now_ = 0;
  uint64_t next_seq_ = 1;
  std::vector<HeapEntry> heap_;
  std::vector<std::unique_ptr<Node[]>> chunks_;  // the slab; chunk arrays never move
  uint32_t n_nodes_ = 0;        // slots handed out so far (all chunks, all states)
  std::vector<uint32_t> free_;  // LIFO free list: the hottest slot is reused first
  size_t live_ = 0;             // scheduled and neither fired nor cancelled
  uint64_t events_processed_ = 0;
  // Checked builds verify the (when, seq) firing order is strictly increasing — the
  // stable tie-break every replay relies on. Dead weight otherwise.
  TimeNs last_fired_when_ = 0;
  uint64_t last_fired_seq_ = 0;
};

// --- inline hot path -------------------------------------------------------

template <typename F>
inline Simulator::EventId Simulator::ScheduleAt(TimeNs when, F&& fn) {
  assert(when >= now_ && "cannot schedule in the past");
  if (when < now_) {
    when = now_;
  }
  uint32_t slot;
  if (!free_.empty()) {
    slot = free_.back();
    free_.pop_back();
  } else {
    if ((n_nodes_ >> kSlabChunkShift) == chunks_.size()) {
      chunks_.push_back(std::make_unique<Node[]>(kSlabChunkSize));
    }
    slot = n_nodes_++;
  }
  Node& n = NodeAt(slot);
  // Freed slots always hold an empty EventFn, so this is a pure placement
  // construction: capture bytes + one invoke pointer, nothing else.
  n.fn.Emplace(std::forward<F>(fn));
  const uint32_t gen = n.gen;
  heap_.push_back(HeapEntry{when, next_seq_++, slot, gen});
  SiftUp(heap_.size() - 1);
  ++live_;
  return Pack(slot, gen);
}

template <typename F>
inline Simulator::EventId Simulator::Reschedule(EventId id, TimeNs when, F&& fn) {
  const uint32_t slot = static_cast<uint32_t>(id);
  const uint32_t old_gen = static_cast<uint32_t>(id >> 32);
  if (id == kInvalidEvent || slot >= n_nodes_ || NodeAt(slot).gen != old_gen) {
    return ScheduleAt(when, std::forward<F>(fn));  // nothing live to replace
  }
  assert(when >= now_ && "cannot schedule in the past");
  if (when < now_) {
    when = now_;
  }
  Node& n = NodeAt(slot);
  n.fn.Reset();  // frees a boxed callable; no-op for the inline common case
  const uint32_t gen = ++n.gen;  // tombstones the old heap entry, as Cancel would
  n.fn.Emplace(std::forward<F>(fn));
  heap_.push_back(HeapEntry{when, next_seq_++, slot, gen});
  SiftUp(heap_.size() - 1);
  // live_ is unchanged (one release, one schedule), but the old entry became a
  // tombstone — apply the same compaction policy as Cancel.
  if (heap_.size() >= kCompactMinHeapSize && heap_.size() - live_ > live_) {
    CompactHeap();
  }
  return Pack(slot, gen);
}

inline void Simulator::Cancel(EventId id) {
  if (id == kInvalidEvent) {
    return;
  }
  const uint32_t slot = static_cast<uint32_t>(id);
  const uint32_t gen = static_cast<uint32_t>(id >> 32);
  if (slot >= n_nodes_ || NodeAt(slot).gen != gen) {
    return;  // already fired/cancelled (generation bumped) or never issued
  }
  Node& n = NodeAt(slot);
  n.fn.Reset();  // release the callback's resources now, not at pop time
  ++n.gen;       // tombstones the heap entry and invalidates the id
  free_.push_back(slot);
  --live_;
  // The heap entry stays behind as a tombstone, skipped when it surfaces at the
  // root. Rebuild once tombstones dominate so cancel-heavy phases stay O(live).
  if (heap_.size() >= kCompactMinHeapSize && heap_.size() - live_ > live_) {
    CompactHeap();
  }
}

inline void Simulator::SiftUp(size_t i) {
  // Early-out without re-storing the entry: most pushes land in heap order
  // already (timer wheels fire in time order), and the empty-heap schedule —
  // the single hottest case — must not pay a redundant 24-byte copy.
  if (i == 0 || !Earlier(heap_[i], heap_[(i - 1) / 2])) {
    return;
  }
  const HeapEntry e = heap_[i];
  do {
    const size_t parent = (i - 1) / 2;
    heap_[i] = heap_[parent];
    i = parent;
  } while (i > 0 && Earlier(e, heap_[(i - 1) / 2]));
  heap_[i] = e;
}

inline void Simulator::SiftDown(size_t i) {
  const size_t n = heap_.size();
  const HeapEntry e = heap_[i];
  while (true) {
    size_t child = 2 * i + 1;
    if (child >= n) {
      break;
    }
    if (child + 1 < n && Earlier(heap_[child + 1], heap_[child])) {
      ++child;
    }
    if (!Earlier(heap_[child], e)) {
      break;
    }
    heap_[i] = heap_[child];
    i = child;
  }
  heap_[i] = e;
}

inline void Simulator::PopRoot() {
  const size_t last = heap_.size() - 1;
  if (last > 0) {  // skip the self-copy when popping the only element
    heap_[0] = heap_[last];
  }
  heap_.pop_back();
  if (last > 1) {
    SiftDown(0);
  }
}

inline void Simulator::SkimStale() {
  while (!heap_.empty() && Stale(heap_[0])) {
    PopRoot();
  }
}

inline void Simulator::FireTop() {
  const HeapEntry e = heap_[0];
  PopRoot();
  // Virtual time is monotonic and the tie-break is stable: events at the same
  // timestamp fire in schedule order. Every replay guarantee rests on these two.
  VS_INVARIANT(e.when >= now_,
               "event %llu fires at %lld ns but Now() is already %lld ns",
               static_cast<unsigned long long>(e.seq),
               static_cast<long long>(e.when), static_cast<long long>(now_));
  VS_INVARIANT(e.when > last_fired_when_ ||
                   (e.when == last_fired_when_ && e.seq > last_fired_seq_),
               "tie-break regression: event %llu at %lld ns fired after event %llu "
               "at %lld ns",
               static_cast<unsigned long long>(e.seq),
               static_cast<long long>(e.when),
               static_cast<unsigned long long>(last_fired_seq_),
               static_cast<long long>(last_fired_when_));
#if VSCALE_CHECKED
  last_fired_when_ = e.when;
  last_fired_seq_ = e.seq;
#endif
  now_ = e.when;
  Node& n = NodeAt(e.slot);
  ++n.gen;  // invalidates the outstanding EventId: Cancel after fire is a no-op
  --live_;
  ++events_processed_;
  VSCALE_TRACE_INSTANT_ARG(now_, TraceCategory::kSim, "event_fire", -1, -1, -1,
                           "pending", pending_events());
  // In-place invocation: the chunked slab guarantees `n` stays put even if the
  // callback grows the slab, and the slot is not on the free list yet, so a
  // callback that schedules can never clobber its own executing closure. The
  // slot is released only after the callback returns.
  n.fn();
  n.fn.Reset();
  free_.push_back(e.slot);
}

inline bool Simulator::Step() {
  SkimStale();
  if (heap_.empty()) {
    return false;
  }
  FireTop();
  return true;
}

// Re-schedules itself at a fixed period until stopped. The callback observes Now().
class PeriodicTask {
 public:
  PeriodicTask(Simulator& sim, TimeNs period, std::function<void()> fn);
  ~PeriodicTask();
  PeriodicTask(const PeriodicTask&) = delete;
  PeriodicTask& operator=(const PeriodicTask&) = delete;

  // First fire happens at Now() + phase (default: one full period from now).
  void Start(TimeNs phase = -1);
  void Stop();
  bool running() const { return running_; }
  TimeNs period() const { return period_; }
  void set_period(TimeNs period) { period_ = period; }

 private:
  void Fire();

  Simulator& sim_;
  TimeNs period_;
  std::function<void()> fn_;
  Simulator::EventId pending_ = Simulator::kInvalidEvent;
  bool running_ = false;
};

}  // namespace vscale

#endif  // VSCALE_SRC_SIM_EVENT_QUEUE_H_
