#include "src/sim/event_queue.h"

#include <cassert>
#include <utility>

#include "src/base/check.h"
#include "src/base/trace.h"

namespace vscale {

Simulator::Simulator() {
  // Typical steady-state populations are tens of events; reserving avoids the
  // first few growth reallocations without committing real memory.
  heap_.reserve(64);
  free_.reserve(64);
}

void Simulator::CompactHeap() {
  size_t keep = 0;
  for (size_t i = 0; i < heap_.size(); ++i) {
    if (!Stale(heap_[i])) {
      heap_[keep++] = heap_[i];
    }
  }
  heap_.resize(keep);
  // Floyd heapify: O(n), and the result is a valid (when, seq) min-heap no matter
  // the input order, so firing order is untouched.
  for (size_t i = keep / 2; i-- > 0;) {
    SiftDown(i);
  }
}

void Simulator::RunUntil(TimeNs deadline) {
  while (true) {
    SkimStale();
    if (heap_.empty() || heap_[0].when > deadline) {
      break;
    }
    FireTop();
    // Same-tick batch: drain every event at Now() back-to-back. Equal-time events
    // cannot overshoot the deadline, so it is not re-checked inside the batch.
    while (true) {
      SkimStale();
      if (heap_.empty() || heap_[0].when != now_) {
        break;
      }
      FireTop();
    }
  }
  if (deadline > now_) {
    now_ = deadline;
  }
}

void Simulator::RunUntilIdle(uint64_t max_events) {
  for (uint64_t i = 0; i < max_events; ++i) {
    if (!Step()) {
      return;
    }
  }
}

bool Simulator::RunUntilCondition(const std::function<bool()>& stop, TimeNs deadline) {
  while (true) {
    if (stop()) {
      return true;
    }
    SkimStale();
    if (heap_.empty() || heap_[0].when > deadline) {
      if (deadline > now_) {
        now_ = deadline;
      }
      return stop();
    }
    FireTop();
  }
}

PeriodicTask::PeriodicTask(Simulator& sim, TimeNs period, std::function<void()> fn)
    : sim_(sim), period_(period), fn_(std::move(fn)) {}

PeriodicTask::~PeriodicTask() { Stop(); }

void PeriodicTask::Start(TimeNs phase) {
  Stop();
  running_ = true;
  const TimeNs delay = phase >= 0 ? phase : period_;
  pending_ = sim_.ScheduleAfter(delay, [this] { Fire(); });
}

void PeriodicTask::Stop() {
  if (pending_ != Simulator::kInvalidEvent) {
    sim_.Cancel(pending_);
    pending_ = Simulator::kInvalidEvent;
  }
  running_ = false;
}

void PeriodicTask::Fire() {
  pending_ = sim_.ScheduleAfter(period_, [this] { Fire(); });
  fn_();
}

}  // namespace vscale
