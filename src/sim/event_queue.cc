#include "src/sim/event_queue.h"

#include <cassert>

#include "src/base/check.h"
#include "src/base/trace.h"

namespace vscale {

Simulator::EventId Simulator::ScheduleAt(TimeNs when, std::function<void()> fn) {
  assert(when >= now_ && "cannot schedule in the past");
  if (when < now_) {
    when = now_;
  }
  const EventId id = next_id_++;
  queue_.push(Entry{when, id});
  callbacks_.emplace(id, std::move(fn));
  return id;
}

void Simulator::Cancel(EventId id) {
  if (id == kInvalidEvent) {
    return;
  }
  auto it = callbacks_.find(id);
  if (it == callbacks_.end()) {
    return;  // already fired or cancelled
  }
  callbacks_.erase(it);
  cancelled_.insert(id);
}

bool Simulator::PopNext(Entry& out) {
  while (!queue_.empty()) {
    const Entry top = queue_.top();
    queue_.pop();
    auto cancelled_it = cancelled_.find(top.id);
    if (cancelled_it != cancelled_.end()) {
      cancelled_.erase(cancelled_it);
      continue;
    }
    out = top;
    return true;
  }
  return false;
}

bool Simulator::Step() {
  Entry entry;
  if (!PopNext(entry)) {
    return false;
  }
  // Virtual time is monotonic and the tie-break is stable: events at the same
  // timestamp fire in schedule order. Every replay guarantee rests on these two.
  VS_INVARIANT(entry.when >= now_,
               "event %llu fires at %lld ns but Now() is already %lld ns",
               static_cast<unsigned long long>(entry.id),
               static_cast<long long>(entry.when), static_cast<long long>(now_));
  VS_INVARIANT(entry.when > last_fired_when_ ||
                   (entry.when == last_fired_when_ && entry.id > last_fired_id_),
               "tie-break regression: event %llu at %lld ns fired after event %llu "
               "at %lld ns",
               static_cast<unsigned long long>(entry.id),
               static_cast<long long>(entry.when),
               static_cast<unsigned long long>(last_fired_id_),
               static_cast<long long>(last_fired_when_));
#if VSCALE_CHECKED
  last_fired_when_ = entry.when;
  last_fired_id_ = entry.id;
#endif
  now_ = entry.when;
  auto it = callbacks_.find(entry.id);
  assert(it != callbacks_.end());
  std::function<void()> fn = std::move(it->second);
  callbacks_.erase(it);
  ++events_processed_;
  VSCALE_TRACE_INSTANT_ARG(now_, TraceCategory::kSim, "event_fire", -1, -1, -1,
                           "pending", pending_events());
  fn();
  return true;
}

void Simulator::RunUntil(TimeNs deadline) {
  while (true) {
    // Peek: find next live entry without consuming it.
    while (!queue_.empty() && cancelled_.contains(queue_.top().id)) {
      cancelled_.erase(queue_.top().id);
      queue_.pop();
    }
    if (queue_.empty() || queue_.top().when > deadline) {
      break;
    }
    Step();
  }
  if (deadline > now_) {
    now_ = deadline;
  }
}

void Simulator::RunUntilIdle(uint64_t max_events) {
  for (uint64_t i = 0; i < max_events; ++i) {
    if (!Step()) {
      return;
    }
  }
}

bool Simulator::RunUntilCondition(const std::function<bool()>& stop, TimeNs deadline) {
  while (true) {
    if (stop()) {
      return true;
    }
    while (!queue_.empty() && cancelled_.contains(queue_.top().id)) {
      cancelled_.erase(queue_.top().id);
      queue_.pop();
    }
    if (queue_.empty() || queue_.top().when > deadline) {
      if (deadline > now_) {
        now_ = deadline;
      }
      return stop();
    }
    Step();
  }
}

PeriodicTask::PeriodicTask(Simulator& sim, TimeNs period, std::function<void()> fn)
    : sim_(sim), period_(period), fn_(std::move(fn)) {}

PeriodicTask::~PeriodicTask() { Stop(); }

void PeriodicTask::Start(TimeNs phase) {
  Stop();
  running_ = true;
  const TimeNs delay = phase >= 0 ? phase : period_;
  pending_ = sim_.ScheduleAfter(delay, [this] { Fire(); });
}

void PeriodicTask::Stop() {
  if (pending_ != Simulator::kInvalidEvent) {
    sim_.Cancel(pending_);
    pending_ = Simulator::kInvalidEvent;
  }
  running_ = false;
}

void PeriodicTask::Fire() {
  pending_ = sim_.ScheduleAfter(period_, [this] { Fire(); });
  fn_();
}

}  // namespace vscale
