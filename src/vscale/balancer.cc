#include "src/vscale/balancer.h"

#include <algorithm>

#include "src/base/trace.h"

namespace vscale {

TimeNs VscaleBalancer::ApplyTarget(int target) {
  target = std::clamp(target, 1, kernel_.n_cpus());
  VSCALE_TRACE_INSTANT_ARG(kernel_.NowNs(), TraceCategory::kVscale, "apply_target",
                           kernel_.domain().id(), -1, -1, "target", target);
  TimeNs cost = 0;
  int active = kernel_.online_cpus();
  // Shrink: freeze the highest-id active vCPU first (vCPU0 stays).
  while (active > target) {
    int victim = -1;
    for (int i = kernel_.n_cpus() - 1; i >= 1; --i) {
      if (!kernel_.IsFrozen(i)) {
        victim = i;
        break;
      }
    }
    if (victim < 0) {
      break;
    }
    cost += kernel_.FreezeCpu(victim);
    ++freezes_;
    --active;
  }
  // Grow: unfreeze the lowest-id frozen vCPU first.
  while (active < target) {
    int candidate = -1;
    for (int i = 1; i < kernel_.n_cpus(); ++i) {
      if (kernel_.IsFrozen(i)) {
        candidate = i;
        break;
      }
    }
    if (candidate < 0) {
      break;
    }
    cost += kernel_.UnfreezeCpu(candidate);
    ++unfreezes_;
    ++active;
  }
  return cost;
}

}  // namespace vscale
