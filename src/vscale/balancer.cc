#include "src/vscale/balancer.h"

#include <algorithm>

#include "src/base/trace.h"
#include "src/obs/stall_accounting.h"

namespace vscale {

VscaleBalancer::ApplyOutcome VscaleBalancer::ApplyTarget(int target) {
  target = std::clamp(target, 1, kernel_.n_cpus());
  VSCALE_TRACE_INSTANT_ARG(kernel_.NowNs(), TraceCategory::kVscale, "apply_target",
                           kernel_.domain().id(), -1, -1, "target", target);
  VSCALE_STALL_HOOK(OnApplyTarget(kernel_.domain().id(), target));
  ApplyOutcome out;
  int active = kernel_.online_cpus();
  // A freeze/unfreeze op that the fault plane fails burns its syscall entry before
  // erroring out; the rest of the batch is abandoned (the daemon retries with
  // backoff rather than hammering a failing hotplug path).
  auto op_failed = [&]() {
    if (faults_ != nullptr && faults_->Active(FaultKind::kFreezeFail)) {
      out.cost += kernel_.cost().freeze_syscall;
      ++out.ops_failed;
      ++op_failures_;
      VSCALE_TRACE_INSTANT(kernel_.NowNs(), TraceCategory::kVscale, "freeze_op_fail",
                           kernel_.domain().id(), -1, -1);
      return true;
    }
    return false;
  };
  auto perturb = [&](TimeNs op_cost) {
    if (faults_ != nullptr && faults_->Active(FaultKind::kFreezeHang)) {
      ++op_hangs_;
      return op_cost * std::max<int64_t>(2, faults_->Magnitude(FaultKind::kFreezeHang));
    }
    return op_cost;
  };
  // Shrink: freeze the highest-id active vCPU first (vCPU0 stays).
  while (active > target) {
    int victim = -1;
    for (int i = kernel_.n_cpus() - 1; i >= 1; --i) {
      if (!kernel_.IsFrozen(i)) {
        victim = i;
        break;
      }
    }
    if (victim < 0) {
      break;
    }
    if (op_failed()) {
      out.complete = false;
      return out;
    }
    out.cost += perturb(kernel_.FreezeCpu(victim));
    ++freezes_;
    --active;
  }
  // Grow: unfreeze the lowest-id frozen vCPU first.
  while (active < target) {
    int candidate = -1;
    for (int i = 1; i < kernel_.n_cpus(); ++i) {
      if (kernel_.IsFrozen(i)) {
        candidate = i;
        break;
      }
    }
    if (candidate < 0) {
      break;
    }
    if (op_failed()) {
      out.complete = false;
      return out;
    }
    out.cost += perturb(kernel_.UnfreezeCpu(candidate));
    ++unfreezes_;
    ++active;
  }
  out.complete = active == target;
  return out;
}

}  // namespace vscale
