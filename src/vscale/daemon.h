// The vScale user-space daemon: an RT-class thread pinned to vCPU0 that polls the
// vScale channel every period and instructs the balancer to (un)freeze vCPUs so the
// active count tracks the VM's CPU extendability (paper sections 3 & 4.1).
//
// Implemented as a ThreadBody so the daemon's own CPU consumption (channel reads,
// freeze hypercalls, IPIs) is charged inside the simulated guest like any other work.

#ifndef VSCALE_SRC_VSCALE_DAEMON_H_
#define VSCALE_SRC_VSCALE_DAEMON_H_

#include <functional>
#include <vector>

#include "src/base/time.h"
#include "src/guest/kernel.h"
#include "src/guest/thread.h"
#include "src/hypervisor/vscale_channel.h"
#include "src/vscale/balancer.h"

namespace vscale {

struct DaemonConfig {
  TimeNs poll_period = Milliseconds(10);
  // Confirmation counts before acting on a change (1 = act immediately). Both
  // directions filter 10 ms-scale noise in the extendability signal; shrinking waits a
  // little longer because packing threads onto fewer vCPUs costs parallel workloads
  // real throughput, while a short over-provisioned window merely queues one vCPU.
  int shrink_confirmations = 5;
  int grow_confirmations = 2;
  // Never shrink below the parallelism the VM is currently obtaining with *useful*
  // (non-busy-wait) cycles. The extendability channel reports the weight-fair view;
  // a blocking workload often obtains more than that through wakeup boosting, and
  // packing it onto fewer vCPUs would trade real progress for nothing. Spinning
  // workloads are unaffected: their obtainment is mostly waste, which this guard
  // deliberately ignores. The guest computes this from its own thread accounting —
  // no new hypervisor channel is needed.
  bool useful_obtainment_guard = true;
};

class VscaleDaemon : public ThreadBody {
 public:
  VscaleDaemon(GuestKernel& kernel, HvServices& hv, DaemonConfig config);

  // Spawns the daemon thread (RT class, pinned to vCPU0). Call once after guest setup.
  GuestThread& Start();

  Op Next(GuestKernel& kernel, GuestThread& thread) override;

  const VscaleBalancer& balancer() const { return balancer_; }
  const VscaleChannel& channel() const { return channel_; }
  int last_target() const { return last_target_; }

  // Trace hook for Figure 8: (time, active vCPUs after this cycle).
  std::function<void(TimeNs, int)> on_cycle;

 private:
  GuestKernel& kernel_;
  DaemonConfig config_;
  VscaleChannel channel_;
  VscaleBalancer balancer_;

  enum class Phase { kRead, kApply, kSleep };
  Phase phase_ = Phase::kRead;
  int last_target_ = 0;
  int pending_target_ = -1;
  int votes_ = 0;
  TimeNs pending_apply_cost_ = 0;
  // Trailing samples of (time, cpu, spin, wait) so the obtainment guard averages
  // over ~6 poll periods instead of flapping at barrier cadence.
  struct DemandSample {
    TimeNs time = 0;
    TimeNs cpu = 0;
    TimeNs spin = 0;
    TimeNs wait = 0;
  };
  static constexpr int kDemandWindow = 6;
  DemandSample samples_[kDemandWindow];
  int sample_head_ = 0;
  int sample_count_ = 0;
};

}  // namespace vscale

#endif  // VSCALE_SRC_VSCALE_DAEMON_H_
