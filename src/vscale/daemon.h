// The vScale user-space daemon: an RT-class thread pinned to vCPU0 that polls the
// vScale channel every period and instructs the balancer to (un)freeze vCPUs so the
// active count tracks the VM's CPU extendability (paper sections 3 & 4.1).
//
// Implemented as a ThreadBody so the daemon's own CPU consumption (channel reads,
// freeze hypercalls, IPIs) is charged inside the simulated guest like any other work.
//
// Hardened control loop (docs/FAULTS.md): failed channel reads are retried with
// bounded deterministic exponential backoff; a payload whose writer sequence stops
// advancing is held (never acted on); consecutive failed cycles trigger graceful
// degradation — unfreeze to a safe vCPU floor and hold until the channel produces
// enough consecutive healthy reads to resume scaling. The daemon heartbeats every
// live cycle; the external VscaleWatchdog (watchdog.h) covers the case where the
// daemon itself is stalled or crashed and cannot run this logic.

#ifndef VSCALE_SRC_VSCALE_DAEMON_H_
#define VSCALE_SRC_VSCALE_DAEMON_H_

#include <functional>
#include <vector>

#include "src/base/time.h"
#include "src/faults/fault_injector.h"
#include "src/guest/kernel.h"
#include "src/guest/thread.h"
#include "src/hypervisor/vscale_channel.h"
#include "src/vscale/balancer.h"

namespace vscale {

struct DaemonConfig {
  TimeNs poll_period = Milliseconds(10);
  // Confirmation counts before acting on a change (1 = act immediately). Both
  // directions filter 10 ms-scale noise in the extendability signal; shrinking waits a
  // little longer because packing threads onto fewer vCPUs costs parallel workloads
  // real throughput, while a short over-provisioned window merely queues one vCPU.
  int shrink_confirmations = 5;
  int grow_confirmations = 2;
  // Never shrink below the parallelism the VM is currently obtaining with *useful*
  // (non-busy-wait) cycles. The extendability channel reports the weight-fair view;
  // a blocking workload often obtains more than that through wakeup boosting, and
  // packing it onto fewer vCPUs would trade real progress for nothing. Spinning
  // workloads are unaffected: their obtainment is mostly waste, which this guard
  // deliberately ignores. The guest computes this from its own thread accounting —
  // no new hypervisor channel is needed.
  bool useful_obtainment_guard = true;

  // --- hardening (docs/FAULTS.md) ---
  // In-cycle retries of a failed channel read, with exponential backoff
  // base * 2^(attempt-1) capped at retry_backoff_cap. Deterministic: no jitter.
  int max_read_retries = 3;
  // Retries of an incomplete freeze/unfreeze batch within one cycle (same backoff).
  int max_apply_retries = 3;
  TimeNs retry_backoff_base = Microseconds(200);
  TimeNs retry_backoff_cap = Milliseconds(5);
  // Consecutive successful reads with an unchanged writer seq before the payload is
  // declared stale and held (not acted on). Must comfortably exceed the worst-case
  // healthy poll/ticker phase drift; seq 0 (never written) is exempt.
  int stale_reads_threshold = 8;
  // Consecutive failed cycles (read retries exhausted) before graceful degradation.
  int unhealthy_cycles = 2;
  // Consecutive healthy, fresh reads before a degraded daemon resumes scaling.
  int resume_confirmations = 3;
  // Degradation unfreezes up to this many vCPUs and holds; <= 0 = all vCPUs.
  int safe_vcpu_floor = 0;

  // --- adversarial hardening (docs/ADVERSARIAL.md); default OFF ---
  // Cross-check a grow suggestion against the guest's own observed demand rate
  // (CPU consumed + runnable-wait per unit time, from the DemandSample window)
  // before acting on it. A channel that promises more vCPUs than the guest's
  // demand could plausibly use — the signature of an inflated extendability —
  // is clamped to the plausible count instead of trusted. Shrinks are never
  // clamped: lying *low* only hurts the liar.
  bool plausibility_clamp = false;
  // Hysteresis: consecutive implausible grow cycles required before the clamp
  // engages, so a genuine demand spike racing the sample window is not capped.
  int clamp_confirmations = 2;

  // Aborts (or reaches the installed invariant handler) on nonsensical values —
  // non-positive periods, confirmation counts < 1, negative retry budgets. Called
  // by the daemon/watchdog constructors; callable directly by tests.
  void Validate() const;
};

class VscaleDaemon : public ThreadBody {
 public:
  VscaleDaemon(GuestKernel& kernel, HvServices& hv, DaemonConfig config);

  // Spawns the daemon thread (RT class, pinned to vCPU0). Call once after guest setup.
  GuestThread& Start();

  Op Next(GuestKernel& kernel, GuestThread& thread) override;

  const VscaleBalancer& balancer() const { return balancer_; }
  const VscaleChannel& channel() const { return channel_; }
  const DaemonConfig& config() const { return config_; }
  int last_target() const { return last_target_; }

  // Optional fault plane, propagated to the channel and balancer. null = no faults.
  void set_fault_injector(FaultInjector* injector);

  // --- health interface (consumed by VscaleWatchdog and the chaos tests) ---
  // Virtual time of the last live cycle start; stops advancing while stalled/crashed.
  TimeNs last_heartbeat() const { return last_heartbeat_; }
  bool degraded() const { return degraded_; }
  // The watchdog found the daemon dead and forced the safe floor; when the daemon
  // comes back it must re-earn resume_confirmations before scaling again.
  void OnWatchdogTrip();

  // --- fault/recovery statistics (registered as metrics by the Testbed) ---
  int64_t cycles() const { return cycles_; }
  int64_t read_retries() const { return read_retries_; }
  int64_t apply_retries() const { return apply_retries_; }
  int64_t stale_detections() const { return stale_detections_; }  // episodes
  int64_t stale_held_cycles() const { return stale_held_cycles_; }
  int64_t degradations() const { return degradations_; }
  int64_t resumes() const { return resumes_; }
  int64_t crashes() const { return crashes_; }
  int64_t restarts() const { return restarts_; }
  // Cycles whose grow target was capped by the plausibility clamp.
  int64_t clamped_cycles() const { return clamped_cycles_; }
  TimeNs first_degrade_ns() const { return first_degrade_ns_; }
  TimeNs last_resume_ns() const { return last_resume_ns_; }

  // Trace hook for Figure 8: (time, active vCPUs after this cycle).
  std::function<void(TimeNs, int)> on_cycle;

 private:
  // Cycle phases. A cycle is: read (with in-cycle retry loop) -> optional apply
  // (with in-cycle retry loop) -> sleep one poll period.
  enum class Phase {
    kRead,          // issue a channel read, run the control decision
    kReadBackoff,   // sleep the backoff, then re-read
    kApply,         // charge the pending freeze/unfreeze batch cost
    kApplyBackoff,  // sleep the backoff before retrying an incomplete batch
    kApplyRetry,    // re-issue the batch after the backoff
    kSleep,         // sleep until the next cycle
  };

  Op CycleStart(GuestKernel& kernel);
  // Runs the balancer toward `target`, accumulating cost; enters kApply.
  void StartApply(int target);
  void DoApply();
  int SafeFloor() const;
  TimeNs Backoff(int attempt) const;
  void Degrade();
  void Resume();
  // Fresh restart after a crash window: all control state is gone with the process.
  void ResetControlState();
  Op FinishCycle(GuestKernel& kernel, TimeNs cost);

  GuestKernel& kernel_;
  DaemonConfig config_;
  VscaleChannel channel_;
  VscaleBalancer balancer_;

  Phase phase_ = Phase::kRead;
  int last_target_ = 0;
  int pending_target_ = -1;
  int votes_ = 0;
  TimeNs pending_apply_cost_ = 0;
  // Trailing samples of (time, cpu, spin, wait) so the obtainment guard averages
  // over ~6 poll periods instead of flapping at barrier cadence.
  struct DemandSample {
    TimeNs time = 0;
    TimeNs cpu = 0;
    TimeNs spin = 0;
    TimeNs wait = 0;
  };
  static constexpr int kDemandWindow = 6;
  DemandSample samples_[kDemandWindow];
  int sample_head_ = 0;
  int sample_count_ = 0;

  // --- hardening state ---
  FaultInjector* faults_ = nullptr;
  TimeNs last_heartbeat_ = 0;
  TimeNs backoff_ = 0;
  int read_attempts_ = 0;    // failed attempts within the current cycle
  int apply_attempts_ = 0;
  int apply_target_ = -1;    // batch being (re)tried; -1 = none
  bool apply_complete_ = true;
  int failed_cycles_ = 0;    // consecutive cycles whose read retries all failed
  int healthy_streak_ = 0;   // consecutive healthy fresh reads
  uint64_t last_seq_ = 0;
  int stale_streak_ = 0;
  bool degraded_ = false;
  bool crashed_ = false;
  int implausible_streak_ = 0;   // consecutive grow cycles that failed the check
  int64_t clamped_cycles_ = 0;
  int64_t cycles_ = 0;
  int64_t read_retries_ = 0;
  int64_t apply_retries_ = 0;
  int64_t stale_detections_ = 0;
  int64_t stale_held_cycles_ = 0;
  int64_t degradations_ = 0;
  int64_t resumes_ = 0;
  int64_t crashes_ = 0;
  int64_t restarts_ = 0;
  TimeNs first_degrade_ns_ = 0;
  TimeNs last_resume_ns_ = 0;
};

}  // namespace vscale

#endif  // VSCALE_SRC_VSCALE_DAEMON_H_
