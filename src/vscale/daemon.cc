#include "src/vscale/daemon.h"

#include <algorithm>
#include <cmath>

#include "src/base/check.h"
#include "src/base/trace.h"
#include "src/obs/coverage.h"

namespace vscale {

void DaemonConfig::Validate() const {
  VS_REQUIRE(poll_period > 0,
             "DaemonConfig.poll_period must be positive (got %lld ns)",
             static_cast<long long>(poll_period));
  VS_REQUIRE(shrink_confirmations >= 1,
             "DaemonConfig.shrink_confirmations must be >= 1 (got %d)",
             shrink_confirmations);
  VS_REQUIRE(grow_confirmations >= 1,
             "DaemonConfig.grow_confirmations must be >= 1 (got %d)",
             grow_confirmations);
  VS_REQUIRE(max_read_retries >= 0,
             "DaemonConfig.max_read_retries must be >= 0 (got %d)",
             max_read_retries);
  VS_REQUIRE(max_apply_retries >= 0,
             "DaemonConfig.max_apply_retries must be >= 0 (got %d)",
             max_apply_retries);
  VS_REQUIRE(retry_backoff_base > 0,
             "DaemonConfig.retry_backoff_base must be positive (got %lld ns)",
             static_cast<long long>(retry_backoff_base));
  VS_REQUIRE(retry_backoff_cap >= retry_backoff_base,
             "DaemonConfig.retry_backoff_cap (%lld ns) must be >= base (%lld ns)",
             static_cast<long long>(retry_backoff_cap),
             static_cast<long long>(retry_backoff_base));
  VS_REQUIRE(stale_reads_threshold >= 1,
             "DaemonConfig.stale_reads_threshold must be >= 1 (got %d)",
             stale_reads_threshold);
  VS_REQUIRE(unhealthy_cycles >= 1,
             "DaemonConfig.unhealthy_cycles must be >= 1 (got %d)",
             unhealthy_cycles);
  VS_REQUIRE(resume_confirmations >= 1,
             "DaemonConfig.resume_confirmations must be >= 1 (got %d)",
             resume_confirmations);
  VS_REQUIRE(clamp_confirmations >= 1,
             "DaemonConfig.clamp_confirmations must be >= 1 (got %d)",
             clamp_confirmations);
}

VscaleDaemon::VscaleDaemon(GuestKernel& kernel, HvServices& hv, DaemonConfig config)
    : kernel_(kernel),
      config_(config),
      channel_(hv, kernel.cost(), kernel.domain().id()),
      balancer_(kernel) {
  config_.Validate();
}

GuestThread& VscaleDaemon::Start() {
  GuestThread& t = kernel_.Spawn("vscaled", this, ThreadType::kUthread,
                                 /*pinned_cpu=*/0);
  t.rt = true;
  return t;
}

void VscaleDaemon::set_fault_injector(FaultInjector* injector) {
  faults_ = injector;
  channel_.set_fault_injector(injector);
  balancer_.set_fault_injector(injector);
}

int VscaleDaemon::SafeFloor() const {
  const int floor =
      config_.safe_vcpu_floor <= 0 ? kernel_.n_cpus() : config_.safe_vcpu_floor;
  return std::min(floor, kernel_.n_cpus());
}

TimeNs VscaleDaemon::Backoff(int attempt) const {
  const int shift = std::min(attempt - 1, 20);
  return std::min(config_.retry_backoff_base << shift, config_.retry_backoff_cap);
}

void VscaleDaemon::StartApply(int target) {
  apply_target_ = target;
  apply_attempts_ = 0;
  DoApply();
  phase_ = Phase::kApply;
}

void VscaleDaemon::DoApply() {
  const VscaleBalancer::ApplyOutcome out = balancer_.ApplyTarget(apply_target_);
  pending_apply_cost_ += out.cost;
  apply_complete_ = out.complete;
}

void VscaleDaemon::Degrade() {
  degraded_ = true;
  ++degradations_;
  VS_COVER(OnDaemonDegrade());
  if (first_degrade_ns_ == 0) {
    first_degrade_ns_ = kernel_.NowNs();
  }
  votes_ = 0;
  pending_target_ = -1;
  healthy_streak_ = 0;
  VSCALE_TRACE_INSTANT_ARG(kernel_.NowNs(), TraceCategory::kVscale,
                           "daemon_degrade", kernel_.domain().id(), 0, -1, "floor",
                           SafeFloor());
  // Fail safe: with the channel dead the VM may be stuck shrunk while demand
  // grows, so give it its vCPUs back (up to the floor) and hold.
  if (kernel_.online_cpus() < SafeFloor()) {
    StartApply(SafeFloor());
  }
}

void VscaleDaemon::Resume() {
  degraded_ = false;
  ++resumes_;
  VS_COVER(OnDaemonResume());
  last_resume_ns_ = kernel_.NowNs();
  votes_ = 0;
  pending_target_ = -1;
  VSCALE_TRACE_INSTANT(kernel_.NowNs(), TraceCategory::kVscale, "daemon_resume",
                       kernel_.domain().id(), 0, -1);
}

void VscaleDaemon::OnWatchdogTrip() {
  // Watchdog-forced degradation enters the same semantic state as a
  // self-detected one; keep the coverage map's daemon-state shadow honest.
  VS_COVER(OnDaemonDegrade());
  degraded_ = true;
  votes_ = 0;
  pending_target_ = -1;
  healthy_streak_ = 0;
}

void VscaleDaemon::ResetControlState() {
  // A restarted daemon is a fresh process: no votes, no samples, no memory of the
  // previous incarnation's health tracking.
  phase_ = Phase::kRead;
  pending_target_ = -1;
  votes_ = 0;
  pending_apply_cost_ = 0;
  sample_head_ = 0;
  sample_count_ = 0;
  backoff_ = 0;
  read_attempts_ = 0;
  apply_attempts_ = 0;
  apply_target_ = -1;
  apply_complete_ = true;
  failed_cycles_ = 0;
  healthy_streak_ = 0;
  last_seq_ = 0;
  stale_streak_ = 0;
  implausible_streak_ = 0;
  degraded_ = false;
}

Op VscaleDaemon::FinishCycle(GuestKernel& kernel, TimeNs cost) {
  ++cycles_;
  if (phase_ == Phase::kRead) {
    phase_ = Phase::kSleep;  // nothing to apply this cycle
  }
  if (on_cycle) {
    on_cycle(kernel.NowNs(), kernel.online_cpus());
  }
  return Op::Compute(cost);
}

Op VscaleDaemon::CycleStart(GuestKernel& kernel) {
  // Fault plane: a crashed daemon is gone until its scheduled restart (the fault
  // window end); a stalled one silently misses cycles. Neither heartbeats — which
  // is exactly what the external VscaleWatchdog keys on.
  if (faults_ != nullptr && faults_->Active(FaultKind::kDaemonCrash)) {
    if (!crashed_) {
      crashed_ = true;
      ++crashes_;
      VS_COVER(OnDaemonCrash());
      VSCALE_TRACE_INSTANT(kernel.NowNs(), TraceCategory::kVscale, "daemon_crash",
                           kernel.domain().id(), 0, -1);
    }
    read_attempts_ = 0;
    return Op::Sleep(config_.poll_period);
  }
  if (crashed_) {
    crashed_ = false;
    ++restarts_;
    VS_COVER(OnDaemonRestart());
    ResetControlState();
    VSCALE_TRACE_INSTANT(kernel.NowNs(), TraceCategory::kVscale, "daemon_restart",
                         kernel.domain().id(), 0, -1);
  }
  if (faults_ != nullptr && faults_->Active(FaultKind::kDaemonStall)) {
    read_attempts_ = 0;
    return Op::Sleep(config_.poll_period);
  }

  last_heartbeat_ = kernel.NowNs();
  // sys_getvscaleinfo + SCHEDOP_getvscaleinfo: fetch extendability, charge cost.
  const VscaleChannel::ReadResult r = channel_.Read();
  if (!r.ok) {
    if (read_attempts_ < config_.max_read_retries) {
      // Bounded in-cycle retry with deterministic exponential backoff.
      ++read_attempts_;
      ++read_retries_;
      backoff_ = Backoff(read_attempts_);
      phase_ = Phase::kReadBackoff;
      VSCALE_TRACE_INSTANT_ARG(kernel.NowNs(), TraceCategory::kVscale,
                               "read_retry", kernel.domain().id(), 0, -1, "attempt",
                               read_attempts_);
      return Op::Compute(r.cost);
    }
    // Retries exhausted: the cycle failed. Enough of those in a row means the
    // channel is gone, not glitching — degrade rather than keep scaling blind.
    read_attempts_ = 0;
    healthy_streak_ = 0;
    ++failed_cycles_;
    if (!degraded_ && failed_cycles_ >= config_.unhealthy_cycles) {
      Degrade();
    }
    return FinishCycle(kernel, r.cost);
  }
  read_attempts_ = 0;
  failed_cycles_ = 0;

  // Staleness: an honest ticker advances seq every recalc period, and the poll
  // period can never outpace it (the cycle takes poll_period plus work). A seq
  // that stops moving means the writer is wedged; its data describes a machine
  // state of unknown age, so hold — never act on it. seq 0 = never written.
  bool stale = false;
  if (r.seq != 0) {
    if (r.seq == last_seq_) {
      ++stale_streak_;
      if (stale_streak_ >= config_.stale_reads_threshold) {
        if (stale_streak_ == config_.stale_reads_threshold) {
          ++stale_detections_;
          VS_COVER(OnDaemonStaleHold());
          VSCALE_TRACE_INSTANT_ARG(kernel.NowNs(), TraceCategory::kVscale,
                                   "stale_detected", kernel.domain().id(), 0, -1,
                                   "seq", static_cast<int64_t>(r.seq));
        }
        stale = true;
      }
    } else {
      stale_streak_ = 0;
    }
    last_seq_ = r.seq;
  }
  if (stale) {
    healthy_streak_ = 0;
    ++stale_held_cycles_;
    return FinishCycle(kernel, r.cost);
  }

  ++healthy_streak_;
  if (degraded_) {
    if (healthy_streak_ >= config_.resume_confirmations) {
      Resume();  // and run a normal control decision this same cycle
    } else {
      // Still degraded: hold the floor, reasserting it if a failed unfreeze (or a
      // watchdog trip racing a freeze batch) left the VM short of it.
      if (kernel.online_cpus() < SafeFloor()) {
        StartApply(SafeFloor());
      }
      return FinishCycle(kernel, r.cost);
    }
  }

  // --- normal control decision (the healthy-path daemon, unchanged) ---
  int target = r.extendability_nvcpus;
  if (target <= 0) {
    target = kernel.online_cpus();  // ticker has not run yet
  }
  if (config_.useful_obtainment_guard || config_.plausibility_clamp) {
    DemandSample s;
    s.time = kernel.NowNs();
    kernel.TotalThreadTimes(&s.cpu, &s.spin, &s.wait);
    if (sample_count_ >= 1) {
      // Diff against the oldest retained sample: an up-to-6-poll trailing window
      // smooths barrier-cadence oscillation in the spin signal.
      const int oldest =
          (sample_head_ + kDemandWindow - sample_count_) % kDemandWindow;
      const DemandSample& old = samples_[oldest];
      const TimeNs cpu_delta = s.cpu - old.cpu;
      const TimeNs spin_delta = s.spin - old.spin;
      const TimeNs wait_delta = s.wait - old.wait;
      const TimeNs time_delta = s.time - old.time;
      if (config_.useful_obtainment_guard) {
        const double spin_frac =
            cpu_delta > 0 ? static_cast<double>(spin_delta) /
                                static_cast<double>(cpu_delta)
                          : 0.0;
        if (spin_frac < 0.65) {
          // Mostly-useful cycles (or an idle VM, whose blocked vCPUs compete for
          // nothing anyway): packing would trade real progress for nothing, since
          // wakeup boosting already protects blocking workloads from scheduling
          // delays. Only spin-wasting workloads shrink below their current size.
          target = std::max(target, kernel.online_cpus());
        }
      }
      if (config_.plausibility_clamp && time_delta > 0) {
        if (target > kernel.online_cpus()) {
          // Plausible parallelism = what the guest's own threads demonstrably
          // demanded (CPU consumed plus queued-runnable time) per unit time,
          // plus one vCPU of growth headroom. A channel promising more than
          // that is reporting demand this guest never generated — the
          // signature of an inflated extendability (docs/ADVERSARIAL.md).
          const double demand_rate =
              static_cast<double>(cpu_delta + wait_delta) /
              static_cast<double>(time_delta);
          const int plausible = static_cast<int>(std::ceil(demand_rate)) + 1;
          if (target > plausible) {
            ++implausible_streak_;
            if (implausible_streak_ >= config_.clamp_confirmations) {
              ++clamped_cycles_;
              VS_COVER(Record(CoveragePoint::kClampFired));
              VSCALE_TRACE_INSTANT_ARG(kernel.NowNs(), TraceCategory::kVscale,
                                       "clamp", kernel.domain().id(), 0, -1,
                                       "plausible", plausible);
              target = std::max(kernel.online_cpus(), plausible);
            }
          } else {
            implausible_streak_ = 0;
          }
        } else {
          implausible_streak_ = 0;
        }
      }
    }
    samples_[sample_head_] = s;
    sample_head_ = (sample_head_ + 1) % kDemandWindow;
    if (sample_count_ < kDemandWindow) {
      ++sample_count_;
    }
  }
  const int active = kernel.online_cpus();
  int to_apply = active;
  if (target != active) {
    if (target == pending_target_) {
      ++votes_;
    } else {
      pending_target_ = target;
      votes_ = 1;
    }
    const int needed = target < active ? config_.shrink_confirmations
                                       : config_.grow_confirmations;
    if (votes_ >= needed) {
      to_apply = target;
      votes_ = 0;
      pending_target_ = -1;
    }
  } else {
    votes_ = 0;
    pending_target_ = -1;
  }
  last_target_ = target;
  if (to_apply != active) {
    StartApply(to_apply);
  }
  return FinishCycle(kernel, r.cost);
}

Op VscaleDaemon::Next(GuestKernel& kernel, GuestThread& thread) {
  (void)thread;
  switch (phase_) {
    case Phase::kRead:
      return CycleStart(kernel);
    case Phase::kReadBackoff:
      phase_ = Phase::kRead;
      return Op::Sleep(backoff_);
    case Phase::kApplyRetry:
      ++apply_retries_;
      DoApply();
      [[fallthrough]];
    case Phase::kApply: {
      // Master-side freeze/unfreeze work (Table 3) executes in our context.
      const TimeNs cost = pending_apply_cost_;
      pending_apply_cost_ = 0;
      if (!apply_complete_ && apply_attempts_ < config_.max_apply_retries) {
        // The batch aborted partway (freeze-op failure): back off and retry the
        // remainder instead of hammering a failing hotplug path.
        ++apply_attempts_;
        backoff_ = Backoff(apply_attempts_);
        phase_ = Phase::kApplyBackoff;
      } else {
        apply_target_ = -1;
        phase_ = Phase::kSleep;
      }
      return Op::Compute(cost);
    }
    case Phase::kApplyBackoff:
      phase_ = Phase::kApplyRetry;
      return Op::Sleep(backoff_);
    case Phase::kSleep:
      phase_ = Phase::kRead;
      return Op::Sleep(config_.poll_period);
  }
  return Op::Exit();
}

}  // namespace vscale
