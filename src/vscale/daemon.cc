#include "src/vscale/daemon.h"

#include <algorithm>

namespace vscale {

VscaleDaemon::VscaleDaemon(GuestKernel& kernel, HvServices& hv, DaemonConfig config)
    : kernel_(kernel),
      config_(config),
      channel_(hv, kernel.cost(), kernel.domain().id()),
      balancer_(kernel) {}

GuestThread& VscaleDaemon::Start() {
  GuestThread& t = kernel_.Spawn("vscaled", this, ThreadType::kUthread,
                                 /*pinned_cpu=*/0);
  t.rt = true;
  return t;
}

Op VscaleDaemon::Next(GuestKernel& kernel, GuestThread& thread) {
  (void)thread;
  switch (phase_) {
    case Phase::kRead: {
      // sys_getvscaleinfo + SCHEDOP_getvscaleinfo: fetch extendability, charge cost.
      const VscaleChannel::ReadResult r = channel_.Read();
      int target = r.extendability_nvcpus;
      if (target <= 0) {
        target = kernel.online_cpus();  // ticker has not run yet
      }
      if (config_.useful_obtainment_guard) {
        DemandSample s;
        s.time = kernel.NowNs();
        kernel.TotalThreadTimes(&s.cpu, &s.spin, &s.wait);
        if (sample_count_ >= 1) {
          // Diff against the oldest retained sample: an up-to-6-poll trailing window
          // smooths barrier-cadence oscillation in the spin signal.
          const int oldest =
              (sample_head_ + kDemandWindow - sample_count_) % kDemandWindow;
          const DemandSample& old = samples_[oldest];
          const TimeNs cpu_delta = s.cpu - old.cpu;
          const TimeNs spin_delta = s.spin - old.spin;
          const double spin_frac =
              cpu_delta > 0 ? static_cast<double>(spin_delta) /
                                  static_cast<double>(cpu_delta)
                            : 0.0;
          if (spin_frac < 0.65) {
            // Mostly-useful cycles (or an idle VM, whose blocked vCPUs compete for
            // nothing anyway): packing would trade real progress for nothing, since
            // wakeup boosting already protects blocking workloads from scheduling
            // delays. Only spin-wasting workloads shrink below their current size.
            target = std::max(target, kernel.online_cpus());
          }
        }
        samples_[sample_head_] = s;
        sample_head_ = (sample_head_ + 1) % kDemandWindow;
        if (sample_count_ < kDemandWindow) {
          ++sample_count_;
        }
      }
      const int active = kernel.online_cpus();
      int to_apply = active;
      if (target != active) {
        if (target == pending_target_) {
          ++votes_;
        } else {
          pending_target_ = target;
          votes_ = 1;
        }
        const int needed = target < active ? config_.shrink_confirmations
                                           : config_.grow_confirmations;
        if (votes_ >= needed) {
          to_apply = target;
          votes_ = 0;
          pending_target_ = -1;
        }
      } else {
        votes_ = 0;
        pending_target_ = -1;
      }
      last_target_ = target;
      if (to_apply != active) {
        pending_apply_cost_ = balancer_.ApplyTarget(to_apply);
        phase_ = Phase::kApply;
      } else {
        phase_ = Phase::kSleep;
      }
      if (on_cycle) {
        on_cycle(kernel.NowNs(), kernel.online_cpus());
      }
      return Op::Compute(r.cost);
    }
    case Phase::kApply: {
      // Master-side freeze/unfreeze work (Table 3) executes in our context.
      const TimeNs cost = pending_apply_cost_;
      pending_apply_cost_ = 0;
      phase_ = Phase::kSleep;
      return Op::Compute(cost);
    }
    case Phase::kSleep:
      phase_ = Phase::kRead;
      return Op::Sleep(config_.poll_period);
  }
  return Op::Exit();
}

}  // namespace vscale
