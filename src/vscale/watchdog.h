// VscaleWatchdog: the last line of defence when the daemon ITSELF is dead.
//
// The hardened daemon (daemon.h) handles channel failures because its control loop
// still runs. But a stalled or crashed daemon runs nothing: the VM would sit frozen
// at whatever size the last cycle left it, indefinitely. This watchdog models the
// kernel-side guard a production deployment would pair with an RT control daemon
// (a hung-task / softdog equivalent): a periodic check that the daemon's heartbeat
// is still advancing. If the heartbeat goes silent for `missed_cycles` daemon poll
// periods, the watchdog trips once: it unfreezes vCPUs up to the safe floor (the
// emergency unfreeze work is charged to vCPU0's kernel backlog — this is irq/kthread
// context, not the dead daemon's), and tells the daemon via OnWatchdogTrip() so a
// later restart must re-earn its resume confirmations before scaling again.
//
// Deterministic like everything else here: driven by PeriodicTask off the virtual
// clock, no wall-clock anywhere. See docs/FAULTS.md.

#ifndef VSCALE_SRC_VSCALE_WATCHDOG_H_
#define VSCALE_SRC_VSCALE_WATCHDOG_H_

#include <cstdint>

#include "src/base/time.h"
#include "src/guest/kernel.h"
#include "src/sim/event_queue.h"
#include "src/vscale/daemon.h"

namespace vscale {

struct WatchdogConfig {
  // How often the watchdog samples the daemon heartbeat.
  TimeNs check_period = Milliseconds(10);
  // Heartbeat age threshold, in daemon poll periods. Must exceed the daemon's
  // worst-case healthy cycle (poll + read retries + apply retries) by a margin.
  int missed_cycles = 8;
  // Emergency unfreeze target; <= 0 = all vCPUs.
  int safe_vcpu_floor = 0;

  void Validate() const;
};

class VscaleReconciler;

class VscaleWatchdog {
 public:
  VscaleWatchdog(GuestKernel& kernel, VscaleDaemon& daemon, WatchdogConfig config);

  // Arms the periodic check. Call once, after the daemon's Start().
  void Start();
  void Stop();

  // Optional tri-state reconciler (reconciler.h): notified on every trip so a
  // freeze-state wedge behind the dead daemon is audited immediately — "tripped
  // but never reconverged" becomes a detectable, repairable state.
  void set_reconciler(VscaleReconciler* r) { reconciler_ = r; }

  bool tripped() const { return tripped_; }
  int64_t trips() const { return trips_; }
  int64_t recoveries() const { return recoveries_; }
  TimeNs first_trip_ns() const { return first_trip_ns_; }
  TimeNs last_recovery_ns() const { return last_recovery_ns_; }

 private:
  void Check();
  int SafeFloor() const;

  GuestKernel& kernel_;
  VscaleDaemon& daemon_;
  WatchdogConfig config_;
  PeriodicTask task_;
  VscaleReconciler* reconciler_ = nullptr;

  bool tripped_ = false;
  int64_t trips_ = 0;
  int64_t recoveries_ = 0;
  TimeNs first_trip_ns_ = 0;
  TimeNs last_recovery_ns_ = 0;
};

}  // namespace vscale

#endif  // VSCALE_SRC_VSCALE_WATCHDOG_H_
