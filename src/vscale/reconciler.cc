#include "src/vscale/reconciler.h"

#include "src/base/check.h"
#include "src/base/trace.h"
#include "src/obs/coverage.h"

namespace vscale {

void ReconcilerConfig::Validate() const {
  VS_REQUIRE(check_period > 0,
             "ReconcilerConfig.check_period must be positive (got %lld ns)",
             static_cast<long long>(check_period));
  VS_REQUIRE(grace >= 0, "ReconcilerConfig.grace must be >= 0 (got %lld ns)",
             static_cast<long long>(grace));
}

VscaleReconciler::VscaleReconciler(GuestKernel& kernel, HvServices& hv,
                                   VscaleDaemon* daemon, ReconcilerConfig config)
    : kernel_(kernel),
      hv_(hv),
      daemon_(daemon),
      config_(config),
      task_(kernel.sim(), config.check_period, [this] { Audit(); }),
      diverged_since_(static_cast<size_t>(kernel.n_cpus()), -1) {
  config_.Validate();
}

void VscaleReconciler::Start() { task_.Start(); }

void VscaleReconciler::Stop() { task_.Stop(); }

void VscaleReconciler::OnWatchdogTrip() {
  // The trip already proves the control plane blew its deadline: audit now so a
  // freeze-state wedge behind the dead daemon is timestamped (and, past grace,
  // repaired) without waiting out the rest of the reconcile period.
  VSCALE_TRACE_INSTANT(kernel_.NowNs(), TraceCategory::kVscale,
                       "reconcile_trip_audit", kernel_.domain().id(), 0, -1);
  Audit();
}

TimeNs VscaleReconciler::RepairVcpu(int i, bool guest_frozen, bool hv_frozen,
                                    bool lost_wake) {
  const TimeNs now = kernel_.NowNs();
  ++repairs_;
  last_repair_ns_ = now;
  VS_COVER(OnReconcileRepair());
  TimeNs cost = 0;
  const DomainId dom = kernel_.domain().id();
  if (lost_wake) {
    // Lost wakeup: the vCPU sits hypervisor-blocked over queued runnable
    // threads, which can only mean its wake notification never landed (the
    // enqueue always precedes the IPI). tick_rescue covers this while some
    // other vCPU still ticks; the reconciler is the rescuer of last resort for
    // a fully idle domain, where no tick will ever fire. Same daemon-side
    // hypercall channel as the re-kick below — not the faultable guest seam.
    hv_.NotifyEvent(dom, i, kPortResched, /*urgent=*/false);
    cost += kernel_.cost().freeze_resched_ipi;
    VSCALE_TRACE_INSTANT(now, TraceCategory::kVscale, "reconcile_rewake", dom, i,
                         -1);
  }
  if (guest_frozen != hv_frozen) {
    // The guest mask is authoritative — it is what balancing and irq routing
    // already obey — so re-issue SCHEDOP_freezecpu to drag the hypervisor's
    // credit accounting back into agreement with it.
    hv_.NotifyFreeze(dom, i, guest_frozen);
    cost += kernel_.cost().freeze_hypercall;
    VSCALE_TRACE_INSTANT_ARG(now, TraceCategory::kVscale, "reconcile_refreeze",
                             dom, i, -1, "frozen", guest_frozen ? 1 : 0);
  }
  if (guest_frozen && kernel_.cpu(i).evacuate_pending) {
    // Wedged handshake: frozen past grace but never evacuated — the freeze IPI
    // was lost. Re-kick the event channel directly (hypercall path, not the
    // faultable guest-interior seam: the daemon-side poke is its own channel).
    hv_.NotifyEvent(dom, i, kPortFreeze, /*urgent=*/true);
    cost += kernel_.cost().freeze_resched_ipi;
    VSCALE_TRACE_INSTANT(now, TraceCategory::kVscale, "reconcile_rekick", dom, i,
                         -1);
  }
  return cost;
}

void VscaleReconciler::Audit() {
  const TimeNs now = kernel_.NowNs();
  ++cycles_;
  const uint64_t guest_mask = kernel_.freeze_mask();
  const uint64_t hv_mask = kernel_.domain().hv_freeze_mask();
  bool any_divergence = false;
  TimeNs repair_cost = 0;

  // Leg 1+2: guest cpu_freeze_mask vs hypervisor frozen bits, plus the wedged
  // handshake (frozen but never evacuated) that leaves both masks agreeing on a
  // state the vCPU never actually reached.
  for (int i = 0; i < kernel_.n_cpus(); ++i) {
    const bool guest_frozen = ((guest_mask >> i) & 1) != 0;
    const bool hv_frozen = ((hv_mask >> i) & 1) != 0;
    const GuestCpu& c = kernel_.cpu(i);
    const Vcpu& v = kernel_.domain().vcpu(i);
    const bool wedged = guest_frozen && c.evacuate_pending;
    // A vCPU hypervisor-blocked with runnable threads queued is the fourth
    // divergence shape: the guest's runqueue says "work here", the hypervisor's
    // blocked bit says "nothing to do". Same predicate as the tick_rescue scan
    // in HandleTick, but audited from the daemon-side heartbeat so it fires
    // even when no other vCPU is awake to tick.
    const bool lost_wake = !c.frozen && !c.evacuate_pending && !c.hv_running &&
                           c.current == nullptr && !c.runq.empty() &&
                           v.state == VcpuState::kBlocked && !v.polling;
    const bool diverged = guest_frozen != hv_frozen || wedged || lost_wake;
    const size_t idx = static_cast<size_t>(i);
    if (!diverged) {
      diverged_since_[idx] = -1;
      continue;
    }
    any_divergence = true;
    if (diverged_since_[idx] < 0) {
      diverged_since_[idx] = now;
      ++divergence_detected_;
      if (first_divergence_ns_ == 0) {
        first_divergence_ns_ = now;
      }
      VS_COVER(OnReconcileDivergence());
      VSCALE_TRACE_INSTANT_ARG(now, TraceCategory::kVscale, "reconcile_diverge",
                               kernel_.domain().id(), i, -1, "wedged",
                               wedged ? 1 : 0);
    } else if (now - diverged_since_[idx] >= config_.grace) {
      repair_cost += RepairVcpu(i, guest_frozen, hv_frozen, lost_wake);
      // Restart the clock: the repair gets a full grace window to take effect
      // before the reconciler escalates to repairing the same vCPU again.
      diverged_since_[idx] = now;
    }
  }

  // Leg 3: the daemon's believed size vs the guest's actual online count. Only
  // the under-provisioned direction is a liveness problem (the VM runs smaller
  // than its controller intends, forever); over-provisioned just means the next
  // healthy daemon cycle will shrink it back.
  if (daemon_ != nullptr && daemon_->last_target() > 0) {
    const int believed = daemon_->last_target();
    const int online = kernel_.online_cpus();
    if (online < believed) {
      any_divergence = true;
      if (daemon_diverged_since_ < 0) {
        daemon_diverged_since_ = now;
        ++divergence_detected_;
        if (first_divergence_ns_ == 0) {
          first_divergence_ns_ = now;
        }
        VS_COVER(OnReconcileDivergence());
        VSCALE_TRACE_INSTANT_ARG(now, TraceCategory::kVscale,
                                 "reconcile_diverge", kernel_.domain().id(), -1,
                                 -1, "believed_minus_online", believed - online);
      } else if (now - daemon_diverged_since_ >= config_.grace) {
        ++repairs_;
        last_repair_ns_ = now;
        VS_COVER(OnReconcileRepair());
        int n_online = online;
        for (int i = 1; i < kernel_.n_cpus() && n_online < believed; ++i) {
          if (kernel_.IsFrozen(i)) {
            repair_cost += kernel_.UnfreezeCpu(i);
            ++n_online;
          }
        }
        VSCALE_TRACE_INSTANT_ARG(now, TraceCategory::kVscale,
                                 "reconcile_unfreeze", kernel_.domain().id(), -1,
                                 -1, "restored", n_online - online);
        daemon_diverged_since_ = now;
      }
    } else {
      daemon_diverged_since_ = -1;
    }
  }

  // Like the watchdog's emergency unfreeze, repair work is kernel/irq context:
  // it lands on vCPU0's backlog, consumed before thread work.
  if (repair_cost > 0) {
    kernel_.cpu(0).pending_kernel_ns += repair_cost;
  }
  if (prev_divergent_ && !any_divergence) {
    ++converged_;
    VS_COVER(OnReconcileConverged());
    VSCALE_TRACE_INSTANT(now, TraceCategory::kVscale, "reconcile_converged",
                         kernel_.domain().id(), 0, -1);
  }
  prev_divergent_ = any_divergence;
}

}  // namespace vscale
