#include "src/vscale/extendability.h"

#include <algorithm>
#include <cmath>

namespace vscale {
namespace {

int RoundVcpus(TimeNs ext_ns, TimeNs period, VcpuRounding rounding) {
  // Single division for rounding, not accumulation; credits stay integral.
  // vslint: allow(float-accum, one rounding division, not accumulation; credits stay integral)
  const double ratio = static_cast<double>(ext_ns) / static_cast<double>(period);
  switch (rounding) {
    case VcpuRounding::kCeil:
      return static_cast<int>(std::ceil(ratio));
    case VcpuRounding::kFloor:
      return static_cast<int>(std::floor(ratio));
    case VcpuRounding::kNearest:
      return static_cast<int>(std::lround(ratio));
  }
  return 1;
}

}  // namespace

std::vector<VmExtendability> ComputeExtendability(
    const std::vector<VmShareInput>& vms, int pool_pcpus, TimeNs period,
    const ExtendabilityOptions& options) {
  std::vector<VmExtendability> out(vms.size());
  if (vms.empty() || period <= 0 || pool_pcpus <= 0) {
    return out;
  }

  int64_t total_weight = 0;
  for (const auto& vm : vms) {
    total_weight += vm.weight;
  }

  const double capacity =
      static_cast<double>(period) * static_cast<double>(pool_pcpus);

  // Pass 1: fair shares, slack accumulation, competitor set S (Alg. 1 lines 4-15).
  TimeNs cslack = 0;
  int64_t competitor_weight = 0;
  for (size_t i = 0; i < vms.size(); ++i) {
    const auto& vm = vms[i];
    const TimeNs fair =
        total_weight > 0
            ? static_cast<TimeNs>(capacity * static_cast<double>(vm.weight) /
                                  static_cast<double>(total_weight))
            : 0;
    out[i].fair_ns = fair;
    TimeNs waited = vm.waited;
    if (options.waited_cap_ratio > 0.0) {
      waited = std::min(
          waited, static_cast<TimeNs>(options.waited_cap_ratio *
                                      static_cast<double>(vm.consumed)));
    }
    const TimeNs demand =
        options.demand_based ? vm.consumed + waited : vm.consumed;
    const TimeNs release_threshold =
        static_cast<TimeNs>(static_cast<double>(fair) * options.releaser_margin);
    if (demand < release_threshold) {
      // Releaser: contributes slack but keeps its full fair share as extendability so
      // it can always exploit its deserved parallelism when demand ramps up (line 10).
      cslack += fair - demand;
      out[i].ext_ns = fair;
      out[i].competitor = false;
    } else {
      out[i].competitor = true;
      competitor_weight += vm.weight;
    }
  }

  // Pass 2: competitors share the slack proportionally (lines 16-19).
  for (size_t i = 0; i < vms.size(); ++i) {
    const auto& vm = vms[i];
    if (out[i].competitor) {
      const TimeNs bonus =
          competitor_weight > 0
              ? static_cast<TimeNs>(static_cast<double>(cslack) *
                                    static_cast<double>(vm.weight) /
                                    static_cast<double>(competitor_weight))
              : 0;
      out[i].ext_ns = out[i].fair_ns + bonus;
    }
    // Cap and reservation clamp the extendability (paper section 3.2).
    if (vm.cap_pcpus > 0.0) {
      const TimeNs cap_ns =
          static_cast<TimeNs>(vm.cap_pcpus * static_cast<double>(period));
      out[i].ext_ns = std::min(out[i].ext_ns, cap_ns);
    }
    if (vm.reservation_pcpus > 0.0) {
      const TimeNs res_ns =
          static_cast<TimeNs>(vm.reservation_pcpus * static_cast<double>(period));
      out[i].ext_ns = std::max(out[i].ext_ns, res_ns);
    }
    // A VM can never obtain more than the whole pool.
    out[i].ext_ns = std::min(out[i].ext_ns, static_cast<TimeNs>(capacity));

    int n = RoundVcpus(out[i].ext_ns, period, options.rounding);
    n = std::clamp(n, 1, std::max(1, vm.max_vcpus));
    out[i].optimal_vcpus = n;
  }
  return out;
}

}  // namespace vscale
