// VCPU-Bal (Song et al., APSys'13) — the prior system the paper positions vScale
// against (sections 2.3 and 6), implemented as an executable comparator.
//
// VCPU-Bal pioneered dynamic vCPU counts but with the architecture vScale rejects:
//  * a CENTRALIZED controller in dom0 polls every VM through libxl (Figure 4's
//    per-VM ~0.5 ms — worse under dom0 I/O load);
//  * targets consider only the VMs' WEIGHTS, not consumption — not work-conserving:
//    a VM whose neighbours are idle is still pinned to its weight share;
//  * reconfiguration goes through Linux CPU hotplug (Figure 5's milliseconds to
//    >100 ms, with a stop_machine() stall on every online vCPU per removal).
//
// The original authors could only simulate their policy; this class "really runs" it
// against the same hypervisor/guest substrate vScale uses, so bench_comparison_vcpubal
// can put the three systems side by side.

#ifndef VSCALE_SRC_VSCALE_VCPUBAL_H_
#define VSCALE_SRC_VSCALE_VCPUBAL_H_

#include <memory>
#include <vector>

#include "src/base/rng.h"
#include "src/guest/kernel.h"
#include "src/hypervisor/hotplug_model.h"
#include "src/hypervisor/machine.h"
#include "src/hypervisor/toolstack.h"
#include "src/sim/event_queue.h"

namespace vscale {

struct VcpuBalConfig {
  // Polling any faster is pointless when a single reconfiguration can stall the
  // guest for tens of milliseconds (the paper's argument for lighter knobs).
  TimeNs poll_period = Seconds(1);
  Dom0Load dom0_load = Dom0Load::kIdle;
  // Kernel whose hotplug latencies apply (default: Linux 3.14.15, index 2).
  int kernel_model_index = 2;
};

class VcpuBalController {
 public:
  VcpuBalController(Machine& machine, VcpuBalConfig config);

  // Registers a guest the controller manages (UP guests are ignored, like vScale).
  void Manage(GuestKernel& kernel);

  void Start();
  void Stop();

  // One polling pass: read all VMs through libxl, compute weight-share targets,
  // reconfigure via hotplug. Exposed for tests.
  void Poll();

  int64_t polls() const { return polls_; }
  int64_t reconfigurations() const { return reconfigurations_; }
  // dom0 CPU burnt monitoring (libxl reads).
  TimeNs monitoring_cost() const { return monitoring_cost_; }
  // Guest time destroyed by stop_machine stalls.
  TimeNs hotplug_stall() const { return hotplug_stall_; }

 private:
  int WeightShareTarget(const Domain& d) const;

  Machine& machine_;
  VcpuBalConfig config_;
  Dom0Toolstack toolstack_;
  HotplugModel hotplug_;
  std::vector<GuestKernel*> kernels_;
  std::unique_ptr<PeriodicTask> task_;
  int64_t polls_ = 0;
  int64_t reconfigurations_ = 0;
  TimeNs monitoring_cost_ = 0;
  TimeNs hotplug_stall_ = 0;
};

}  // namespace vscale

#endif  // VSCALE_SRC_VSCALE_VCPUBAL_H_
