// The hypervisor-side vScale ticker (vscale_ticker_fn in the paper's Xen patch):
// periodically recomputes every SMP-VM's CPU extendability from the credit scheduler's
// runtime data and publishes it to the per-domain vScale channel mailbox.

#ifndef VSCALE_SRC_VSCALE_TICKER_H_
#define VSCALE_SRC_VSCALE_TICKER_H_

#include <functional>
#include <memory>
#include <vector>

#include "src/hypervisor/machine.h"
#include "src/sim/event_queue.h"
#include "src/vscale/extendability.h"

namespace vscale {

class ExtendabilityTicker {
 public:
  // `period` defaults to the cost model's vscale_recalc_period (10 ms).
  //
  // Default options deviate from the paper's Algorithm 1 in two measured ways (both
  // quantified by the ablation benches):
  //  * kNearest rounding instead of ceiling — near saturation the ceiling grants a
  //    vCPU for a sliver of entitlement, which then absorbs all the VM's queueing;
  //  * demand-based accounting — runnable-wait counts as demand, so a VM throttled by
  //    contention is not misclassified as a releaser and its shortfall is not
  //    redistributed as phantom slack.
  explicit ExtendabilityTicker(
      Machine& machine, TimeNs period = 0,
      ExtendabilityOptions options = {.rounding = VcpuRounding::kNearest,
                                      .demand_based = true,
                                      .releaser_margin = 0.85});

  void Start();
  void Stop();
  bool running() const { return task_ && task_->running(); }
  TimeNs period() const { return period_; }

  // One recomputation pass (also callable directly by tests).
  void Recompute();

  int64_t passes() const { return passes_; }

  // Observability: called after each pass with the full result vector (domain order).
  std::function<void(TimeNs, const std::vector<VmExtendability>&)> on_pass;

 private:
  Machine& machine_;
  TimeNs period_;
  ExtendabilityOptions options_;
  std::unique_ptr<PeriodicTask> task_;
  int64_t passes_ = 0;
};

}  // namespace vscale

#endif  // VSCALE_SRC_VSCALE_TICKER_H_
