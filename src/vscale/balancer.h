// The guest-side vScale balancer: decides WHICH vCPUs to (un)freeze to reach the
// target active count and drives the kernel's freeze mechanism (Algorithm 2). The
// mechanism (cpu_freeze_mask, evacuation, IRQ migration) lives in GuestKernel; this is
// the policy layer the daemon instructs. Fault plane: kFreezeFail aborts the batch
// after charging the failed op's syscall entry, kFreezeHang multiplies op cost
// (docs/FAULTS.md); the daemon retries incomplete batches with bounded backoff.

#ifndef VSCALE_SRC_VSCALE_BALANCER_H_
#define VSCALE_SRC_VSCALE_BALANCER_H_

#include <cstdint>

#include "src/base/time.h"
#include "src/faults/fault_injector.h"
#include "src/guest/kernel.h"

namespace vscale {

class VscaleBalancer {
 public:
  explicit VscaleBalancer(GuestKernel& kernel) : kernel_(kernel) {}

  struct ApplyOutcome {
    TimeNs cost = 0;      // master-side cost to charge to the caller
    bool complete = false;  // reached the (clamped) target
    int ops_failed = 0;   // freeze/unfreeze ops the fault plane failed
  };

  // Freezes/unfreezes vCPUs until exactly `target` are active. vCPU0 (the master) is
  // never frozen; shrink freezes the highest-id active vCPU first, growth unfreezes
  // the lowest-id frozen one. The returned cost must be charged to the caller even
  // when the batch aborts incomplete (a failed op still burned its entry path).
  ApplyOutcome ApplyTarget(int target);

  // Optional fault plane; null = no faults.
  void set_fault_injector(FaultInjector* injector) { faults_ = injector; }

  int active_vcpus() const { return kernel_.online_cpus(); }
  int64_t freezes() const { return freezes_; }
  int64_t unfreezes() const { return unfreezes_; }
  int64_t op_failures() const { return op_failures_; }
  int64_t op_hangs() const { return op_hangs_; }

 private:
  GuestKernel& kernel_;
  FaultInjector* faults_ = nullptr;
  int64_t freezes_ = 0;
  int64_t unfreezes_ = 0;
  int64_t op_failures_ = 0;  // ops aborted by kFreezeFail
  int64_t op_hangs_ = 0;     // ops stretched by kFreezeHang
};

}  // namespace vscale

#endif  // VSCALE_SRC_VSCALE_BALANCER_H_
