// The guest-side vScale balancer: decides WHICH vCPUs to (un)freeze to reach the
// target active count and drives the kernel's freeze mechanism (Algorithm 2). The
// mechanism (cpu_freeze_mask, evacuation, IRQ migration) lives in GuestKernel; this is
// the policy layer the daemon instructs.

#ifndef VSCALE_SRC_VSCALE_BALANCER_H_
#define VSCALE_SRC_VSCALE_BALANCER_H_

#include <cstdint>

#include "src/base/time.h"
#include "src/guest/kernel.h"

namespace vscale {

class VscaleBalancer {
 public:
  explicit VscaleBalancer(GuestKernel& kernel) : kernel_(kernel) {}

  // Freezes/unfreezes vCPUs until exactly `target` are active. vCPU0 (the master) is
  // never frozen; shrink freezes the highest-id active vCPU first, growth unfreezes
  // the lowest-id frozen one. Returns the master-side cost to charge to the caller.
  TimeNs ApplyTarget(int target);

  int active_vcpus() const { return kernel_.online_cpus(); }
  int64_t freezes() const { return freezes_; }
  int64_t unfreezes() const { return unfreezes_; }

 private:
  GuestKernel& kernel_;
  int64_t freezes_ = 0;
  int64_t unfreezes_ = 0;
};

}  // namespace vscale

#endif  // VSCALE_SRC_VSCALE_BALANCER_H_
