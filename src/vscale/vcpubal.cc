#include "src/vscale/vcpubal.h"

#include <algorithm>
#include <cmath>

namespace vscale {

VcpuBalController::VcpuBalController(Machine& machine, VcpuBalConfig config)
    : machine_(machine),
      config_(config),
      toolstack_(machine.cost(), machine.rng().Fork(0xBA1)),
      hotplug_(HotplugKernelModels()[static_cast<size_t>(
                   config.kernel_model_index)],
               machine.rng().Fork(0xB01)) {
  task_ = std::make_unique<PeriodicTask>(machine_.sim(), config_.poll_period,
                                         [this] { Poll(); });
}

void VcpuBalController::Manage(GuestKernel& kernel) {
  if (kernel.n_cpus() >= 2) {
    kernels_.push_back(&kernel);
  }
}

void VcpuBalController::Start() { task_->Start(); }

void VcpuBalController::Stop() { task_->Stop(); }

int VcpuBalController::WeightShareTarget(const Domain& d) const {
  // Weight share only — consumption is ignored (not work-conserving).
  int64_t total_weight = 0;
  for (const auto& dom : machine_.domains()) {
    total_weight += dom->weight();
  }
  if (total_weight <= 0) {
    return d.n_vcpus();
  }
  const double share = static_cast<double>(machine_.n_pcpus()) *
                       static_cast<double>(d.weight()) /
                       static_cast<double>(total_weight);
  return std::clamp(static_cast<int>(std::ceil(share)), 1, d.n_vcpus());
}

void VcpuBalController::Poll() {
  ++polls_;
  // dom0 reads every VM's state through libxl before deciding anything. The cost is
  // dom0 CPU (not charged to the guests), but it bounds how fast the loop can react.
  monitoring_cost_ += toolstack_.SampleMonitorAllVms(
      machine_.n_domains(), config_.dom0_load);

  for (GuestKernel* kernel : kernels_) {
    const int target = WeightShareTarget(kernel->domain());
    int online = kernel->online_cpus();
    while (online > target) {
      // Remove the highest online vCPU via Linux hotplug: a stop_machine() window
      // stalls every online vCPU of that guest.
      int victim = -1;
      for (int i = kernel->n_cpus() - 1; i >= 1; --i) {
        if (!kernel->IsFrozen(i)) {
          victim = i;
          break;
        }
      }
      if (victim < 0) {
        break;
      }
      const TimeNs latency = hotplug_.SampleRemove();
      kernel->HotplugRemove(victim, latency);
      hotplug_stall_ += latency * online;  // every online vCPU stalls
      ++reconfigurations_;
      --online;
    }
    while (online < target) {
      int candidate = -1;
      for (int i = 1; i < kernel->n_cpus(); ++i) {
        if (kernel->IsFrozen(i)) {
          candidate = i;
          break;
        }
      }
      if (candidate < 0) {
        break;
      }
      const TimeNs latency = hotplug_.SampleAdd();
      kernel->HotplugAdd(candidate, latency);
      hotplug_stall_ += latency;
      ++reconfigurations_;
      ++online;
    }
  }
}

}  // namespace vscale
