#include "src/vscale/watchdog.h"

#include <algorithm>

#include "src/base/check.h"
#include "src/base/trace.h"
#include "src/obs/coverage.h"
#include "src/vscale/reconciler.h"

namespace vscale {

void WatchdogConfig::Validate() const {
  VS_REQUIRE(check_period > 0,
             "WatchdogConfig.check_period must be positive (got %lld ns)",
             static_cast<long long>(check_period));
  VS_REQUIRE(missed_cycles >= 1,
             "WatchdogConfig.missed_cycles must be >= 1 (got %d)", missed_cycles);
}

VscaleWatchdog::VscaleWatchdog(GuestKernel& kernel, VscaleDaemon& daemon,
                               WatchdogConfig config)
    : kernel_(kernel),
      daemon_(daemon),
      config_(config),
      task_(kernel.sim(), config.check_period, [this] { Check(); }) {
  config_.Validate();
}

void VscaleWatchdog::Start() { task_.Start(); }

void VscaleWatchdog::Stop() { task_.Stop(); }

int VscaleWatchdog::SafeFloor() const {
  const int floor =
      config_.safe_vcpu_floor <= 0 ? kernel_.n_cpus() : config_.safe_vcpu_floor;
  return std::min(floor, kernel_.n_cpus());
}

void VscaleWatchdog::Check() {
  const TimeNs now = kernel_.NowNs();
  const TimeNs deadline =
      static_cast<TimeNs>(config_.missed_cycles) * daemon_.config().poll_period;
  const TimeNs age = now - daemon_.last_heartbeat();
  if (age <= deadline) {
    if (tripped_) {
      // The daemon is heartbeating again (stall window closed or restart done).
      tripped_ = false;
      ++recoveries_;
      VS_COVER(OnWatchdogRecovery());
      last_recovery_ns_ = now;
      VSCALE_TRACE_INSTANT(now, TraceCategory::kVscale, "watchdog_recover",
                           kernel_.domain().id(), 0, -1);
    }
    return;
  }
  if (tripped_) {
    return;  // already degraded; nothing more to force until it recovers
  }
  tripped_ = true;
  ++trips_;
  // Before daemon_.OnWatchdogTrip() below: the pair feature wants the daemon
  // state the trip landed on, not the state the trip forces it into.
  VS_COVER(OnWatchdogTrip());
  if (first_trip_ns_ == 0) {
    first_trip_ns_ = now;
  }
  VSCALE_TRACE_INSTANT_ARG(now, TraceCategory::kVscale, "watchdog_trip",
                           kernel_.domain().id(), 0, -1, "heartbeat_age_ns", age);
  // Emergency unfreeze to the safe floor. This runs in kernel context (the softdog
  // model), not the dead daemon's: the unfreeze work lands on vCPU0's kernel
  // backlog, to be consumed before thread work like any irq bottom half.
  TimeNs emergency_cost = 0;
  for (int i = 1; i < kernel_.n_cpus() && kernel_.online_cpus() < SafeFloor(); ++i) {
    if (kernel_.IsFrozen(i)) {
      emergency_cost += kernel_.UnfreezeCpu(i);
    }
  }
  kernel_.cpu(0).pending_kernel_ns += emergency_cost;
  daemon_.OnWatchdogTrip();
  if (reconciler_ != nullptr) {
    reconciler_->OnWatchdogTrip();
  }
}

}  // namespace vscale
