// VscaleReconciler: a tri-state audit over the freeze protocol's three views.
//
// The freeze handshake leaves its state in three places that are only eventually
// consistent: the daemon's believed active-vCPU count (last_target), the
// hypervisor's per-vCPU frozen bits (Domain::hv_freeze_mask), and the guest's
// cpu_freeze_mask (GuestKernel::freeze_mask). With perfect delivery they agree
// within one daemon cycle. Under the delivery fault domain (docs/FAULTS.md) they
// can wedge apart: a dropped kPortFreeze strands a frozen vCPU mid-evacuation, a
// perturbed hypervisor bit silently halves a domain's credit, a stalled daemon
// believes a size the guest never reached.
//
// The reconciler is the daemon-side heartbeat audit that closes that loop: a
// periodic cross-check of the three views, per-vCPU divergence timestamping, and
// a repair — re-issuing SCHEDOP_freezecpu toward the guest's authoritative mask,
// re-kicking a wedged evacuation, re-waking a vCPU left hypervisor-blocked over
// queued runnable threads (the lost-wakeup shape tick_rescue cannot reach in a
// fully idle domain), unfreezing back up to the daemon's believed size — once a
// divergence outlives a configurable grace window (transient in-cycle
// disagreement must never trigger repair). The watchdog notifies it on
// every trip so "tripped but never reconverged" is audited immediately rather
// than at the next period boundary.
//
// Like the watchdog this is kernel/irq context, not the daemon thread: repair
// costs are charged to vCPU0's kernel backlog. Deterministic: PeriodicTask off
// the virtual clock, no Rng. Constructed only when configured, so an unhardened
// run provably schedules nothing extra (the digest gate relies on this).

#ifndef VSCALE_SRC_VSCALE_RECONCILER_H_
#define VSCALE_SRC_VSCALE_RECONCILER_H_

#include <cstdint>
#include <vector>

#include "src/base/time.h"
#include "src/guest/kernel.h"
#include "src/hypervisor/hv_services.h"
#include "src/sim/event_queue.h"
#include "src/vscale/daemon.h"

namespace vscale {

struct ReconcilerConfig {
  // Audit cadence. Coarser than the daemon poll period: the reconciler is a
  // backstop, not a second control loop.
  TimeNs check_period = Milliseconds(20);
  // How long a divergence must persist before repair. Must exceed the freeze
  // handshake's healthy completion time (IPI delivery + evacuation) so normal
  // mid-handshake disagreement never triggers a repair.
  TimeNs grace = Milliseconds(30);

  void Validate() const;
};

class VscaleReconciler {
 public:
  // `daemon` may be null (no daemon-belief leg: guest vs hypervisor only).
  VscaleReconciler(GuestKernel& kernel, HvServices& hv, VscaleDaemon* daemon,
                   ReconcilerConfig config);

  // Arms the periodic audit. Call once, after the daemon's Start().
  void Start();
  void Stop();

  // Watchdog wiring: a trip means the control plane already missed its
  // deadline, so audit the tri-state now instead of waiting out the period.
  void OnWatchdogTrip();

  // vscale.reconcile.{cycles,divergence_detected,repairs} metric sources.
  int64_t cycles() const { return cycles_; }
  int64_t divergence_detected() const { return divergence_detected_; }
  int64_t repairs() const { return repairs_; }
  int64_t converged() const { return converged_; }
  bool divergent() const { return prev_divergent_; }
  TimeNs first_divergence_ns() const { return first_divergence_ns_; }
  TimeNs last_repair_ns() const { return last_repair_ns_; }

 private:
  void Audit();
  // Repairs vCPU `i`'s leg of the tri-state; returns the kernel-context cost.
  TimeNs RepairVcpu(int i, bool guest_frozen, bool hv_frozen, bool lost_wake);

  GuestKernel& kernel_;
  HvServices& hv_;
  VscaleDaemon* daemon_;  // null: skip the believed-count leg
  ReconcilerConfig config_;
  PeriodicTask task_;

  // Per-vCPU divergence start (guest/hv mask disagreement or wedged
  // evacuation); -1 while that vCPU's views agree.
  std::vector<TimeNs> diverged_since_;
  // Daemon-belief leg divergence start (believed size vs online count).
  TimeNs daemon_diverged_since_ = -1;
  bool prev_divergent_ = false;

  int64_t cycles_ = 0;
  int64_t divergence_detected_ = 0;  // divergence episodes opened
  int64_t repairs_ = 0;              // repair actions issued past grace
  int64_t converged_ = 0;            // divergent -> all-clean transitions
  TimeNs first_divergence_ns_ = 0;
  TimeNs last_repair_ns_ = 0;
};

}  // namespace vscale

#endif  // VSCALE_SRC_VSCALE_RECONCILER_H_
