#include "src/vscale/ticker.h"

#include "src/base/trace.h"

namespace vscale {

ExtendabilityTicker::ExtendabilityTicker(Machine& machine, TimeNs period,
                                         ExtendabilityOptions options)
    : machine_(machine),
      period_(period > 0 ? period : machine.cost().vscale_recalc_period),
      options_(options) {
  task_ = std::make_unique<PeriodicTask>(machine_.sim(), period_,
                                         [this] { Recompute(); });
}

void ExtendabilityTicker::Start() { task_->Start(); }

void ExtendabilityTicker::Stop() { task_->Stop(); }

void ExtendabilityTicker::Recompute() {
  ++passes_;
  std::vector<VmShareInput> inputs;
  inputs.reserve(machine_.domains().size());
  for (const auto& d : machine_.domains()) {
    VmShareInput in;
    in.weight = d->weight();
    in.consumed = machine_.WindowConsumption(d->id());
    in.waited = machine_.WindowWaited(d->id());
    in.max_vcpus = d->n_vcpus();
    in.cap_pcpus = d->cap_pcpus();
    in.reservation_pcpus = d->reservation_pcpus();
    inputs.push_back(in);
  }
  const auto results =
      ComputeExtendability(inputs, machine_.n_pcpus(), period_, options_);
  for (size_t i = 0; i < results.size(); ++i) {
    const auto& d = machine_.domains()[i];
    if (d->n_vcpus() < 2) {
      continue;  // UP-VMs are omitted: no room for scaling (paper section 4.2)
    }
    machine_.WriteExtendability(d->id(), results[i].optimal_vcpus, results[i].ext_ns);
    VSCALE_TRACE_COUNTER(machine_.Now(), TraceCategory::kVscale,
                         "extendability_nvcpus", d->id(),
                         results[i].optimal_vcpus);
  }
  machine_.ResetConsumptionWindow();
  if (on_pass) {
    on_pass(machine_.Now(), results);
  }
}

}  // namespace vscale
