// Algorithm 1 of the paper: computing every VM's CPU extendability from its
// proportional share and recent consumption, under work-conserving max-min fairness.
//
// Kept as a pure function over plain inputs so it can be unit- and property-tested in
// isolation and reused by any proportional-share scheduler (the paper's "generality"
// design principle).

#ifndef VSCALE_SRC_VSCALE_EXTENDABILITY_H_
#define VSCALE_SRC_VSCALE_EXTENDABILITY_H_

#include <cstdint>
#include <vector>

#include "src/base/time.h"

namespace vscale {

struct VmShareInput {
  int64_t weight = 0;
  TimeNs consumed = 0;          // CPU consumed in the last period
  TimeNs waited = 0;            // runnable-but-not-running time (unmet demand)
  int max_vcpus = 1;            // the VM's configured vCPU count
  double cap_pcpus = 0.0;       // 0 = uncapped
  double reservation_pcpus = 0.0;
};

struct VmExtendability {
  TimeNs ext_ns = 0;        // s_ext(t): maximum CPU obtainable next period
  int optimal_vcpus = 1;    // n_i = ceil(s_ext / t), clamped to [1, max_vcpus]
  bool competitor = false;  // over-consumed its fair share (joined set S)
  TimeNs fair_ns = 0;       // s_fair(t), for diagnostics
};

enum class VcpuRounding { kCeil, kFloor, kNearest };  // line 11/18 ablation knob

struct ExtendabilityOptions {
  VcpuRounding rounding = VcpuRounding::kCeil;
  // Count runnable-wait time as demand (VmShareInput::waited). The paper classifies
  // VMs purely by consumption; under contention a VM that *couldn't* obtain its fair
  // share would then be misread as a releaser and its shortfall handed out as slack.
  bool demand_based = false;
  // A VM whose demand reaches this fraction of its fair share is classified as a
  // competitor. The paper uses a strict `demand < fair` test (margin 1.0), which
  // ratchets scaled-down VMs: a VM packed onto ceil(fair) vCPUs can never consume
  // more than its fair share, so it would stay a releaser — and a releaser's
  // extendability is pinned at fair — even on an otherwise idle pool. A margin
  // slightly below 1 lets a saturated-but-packed VM see the slack and grow back.
  double releaser_margin = 1.0;
  // Cap runnable-wait's contribution to demand at this multiple of consumed
  // CPU; 0 = uncapped (stock). Mitigates wait-inflation attacks
  // (docs/ADVERSARIAL.md): a churn VM waking thousands of times a second
  // accrues ratelimit-scale waits against near-zero consumption, inflating its
  // demand into competitor status and siphoning slack. Honest throttled VMs
  // have consumption of the same order as their waits, so a small-integer
  // ratio leaves them intact while discounting churners.
  double waited_cap_ratio = 0.0;
};

// `period` is the recalculation period t; `pool_pcpus` is P. Returns one entry per VM,
// in input order. Total weight of zero yields fair shares of zero (all releasers).
std::vector<VmExtendability> ComputeExtendability(
    const std::vector<VmShareInput>& vms, int pool_pcpus, TimeNs period,
    const ExtendabilityOptions& options = {});

}  // namespace vscale

#endif  // VSCALE_SRC_VSCALE_EXTENDABILITY_H_
