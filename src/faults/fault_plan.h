// FaultPlan: a declarative schedule of fault events to inject into a run.
//
// Each event names a fault kind, an absolute virtual start time, a duration and an
// optional magnitude (kind-specific: latency multiplier, stolen pCPU count, ...).
// The plan is pure data — the FaultInjector arms it on the simulation clock — so a
// plan can be built programmatically, parsed from a spec string (quickstart's
// --faults flag, digest_run scenarios) and replayed bit-identically: fault timing
// rides the same deterministic EventQueue as everything else, and any randomness a
// fault needs comes from an Rng forked from the plan seed (docs/FAULTS.md).

#ifndef VSCALE_SRC_FAULTS_FAULT_PLAN_H_
#define VSCALE_SRC_FAULTS_FAULT_PLAN_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/base/time.h"

namespace vscale {

// Every injectable fault, each hooked at one existing seam of the vScale stack.
// The site and the hardening response are catalogued in docs/FAULTS.md.
enum class FaultKind {
  kChannelStale,   // VscaleChannel::Read returns the payload frozen at fault start
  kChannelGarbled, // payload value perturbed without a matching valid-stamp (torn read)
  kChannelFail,    // the read syscall/hypercall fails outright
  kLatencySpike,   // channel syscall+hypercall latency multiplied by `magnitude`
  kDaemonStall,    // the daemon misses cycles (starved thread): no reads, no heartbeat
  kDaemonCrash,    // daemon dead until the fault window ends (scheduled restart)
  kFreezeFail,     // freeze/unfreeze ops fail after charging their syscall entry cost
  kFreezeHang,     // freeze/unfreeze ops complete but cost `magnitude`x the normal time
  kStealBurst,     // `magnitude` pCPUs stolen from the pool (other-pool interference)
  kIpiDrop,        // guest-interior notification silently lost (send charged, no delivery)
  kIpiDup,         // notification delivered `magnitude` extra times back to back
  kIpiDelay,       // delivery deferred by `magnitude`x the ipi_deliver cost
  kPortMask,       // evtchn port `magnitude - 1` stays masked; pending coalesces,
                   // one flush per (cpu, port) when the window closes
};

// Derived, not hand-maintained: appending an enumerator above grows every
// per-kind array (FaultInjector::active_, the coverage fault block) in lockstep.
inline constexpr FaultKind kMaxFaultKind = FaultKind::kPortMask;
inline constexpr int kNumFaultKinds = static_cast<int>(kMaxFaultKind) + 1;

// Constexpr so the static_assert below can prove at compile time that every
// enumerator has a spec token — a new kind without one fails the build instead
// of silently rendering "?" and breaking the Parse(ToString()) round-trip.
constexpr const char* ToString(FaultKind kind) {
  switch (kind) {
    case FaultKind::kChannelStale:
      return "chan-stale";
    case FaultKind::kChannelGarbled:
      return "chan-garble";
    case FaultKind::kChannelFail:
      return "chan-fail";
    case FaultKind::kLatencySpike:
      return "latency";
    case FaultKind::kDaemonStall:
      return "stall";
    case FaultKind::kDaemonCrash:
      return "crash";
    case FaultKind::kFreezeFail:
      return "freeze-fail";
    case FaultKind::kFreezeHang:
      return "freeze-hang";
    case FaultKind::kStealBurst:
      return "steal";
    case FaultKind::kIpiDrop:
      return "ipi-drop";
    case FaultKind::kIpiDup:
      return "ipi-dup";
    case FaultKind::kIpiDelay:
      return "ipi-delay";
    case FaultKind::kPortMask:
      return "port-mask";
  }
  return "?";
}

namespace fault_internal {
constexpr bool AllFaultKindsNamed() {
  for (int i = 0; i < kNumFaultKinds; ++i) {
    const char* name = ToString(static_cast<FaultKind>(i));
    if (name == nullptr || name[0] == '?') {
      return false;
    }
  }
  return true;
}
}  // namespace fault_internal

static_assert(fault_internal::AllFaultKindsNamed(),
              "ToString(FaultKind) must cover every enumerator");

// The guest-interior delivery fault domain (src/guest/kernel.cc NotifyVcpu):
// the kinds the delivery hardening suite and the kNotificationLost oracle key
// on, as one predicate so the block stays contiguous by construction.
constexpr bool IsDeliveryFault(FaultKind kind) {
  return kind == FaultKind::kIpiDrop || kind == FaultKind::kIpiDup ||
         kind == FaultKind::kIpiDelay || kind == FaultKind::kPortMask;
}

struct FaultEvent {
  FaultKind kind = FaultKind::kChannelFail;
  TimeNs start = 0;     // absolute virtual time
  TimeNs duration = 0;  // fault active in [start, start + duration)
  // Kind-specific intensity; <= 0 selects the kind's default (see DefaultMagnitude).
  int64_t magnitude = 0;

  TimeNs end() const { return start + duration; }

  friend bool operator==(const FaultEvent& a, const FaultEvent& b) {
    return a.kind == b.kind && a.start == b.start && a.duration == b.duration &&
           a.magnitude == b.magnitude;
  }
  friend bool operator!=(const FaultEvent& a, const FaultEvent& b) {
    return !(a == b);
  }
};

// The per-kind meaning of a defaulted magnitude.
int64_t DefaultMagnitude(FaultKind kind);

struct FaultPlan {
  // Seeds the injector's forked Rng (payload garbling picks deterministic noise).
  uint64_t seed = 1;
  std::vector<FaultEvent> events;

  bool empty() const { return events.empty(); }
  FaultPlan& Add(FaultKind kind, TimeNs start, TimeNs duration,
                 int64_t magnitude = 0) {
    events.push_back(FaultEvent{kind, start, duration, magnitude});
    return *this;
  }

  // Canonical spec-string form of the event schedule, parseable by Parse():
  // each time renders in the largest unit (s/ms/us/ns) that divides it exactly,
  // magnitudes render only when explicitly set (> 0). The seed is carried
  // separately (scenario files serialize it as their own field), so
  //   Parse(p.ToString(), &q) && q.events == p.events
  // holds for every plan — the round-trip the fuzz shrinker rests on.
  std::string ToString() const;

  // Member-form of ParseFaultPlan below: replaces `out`'s events (preserving
  // its seed) on success, leaves it untouched and fills *error on failure.
  static bool Parse(const std::string& spec, FaultPlan* out, std::string* error);

  friend bool operator==(const FaultPlan& a, const FaultPlan& b) {
    return a.seed == b.seed && a.events == b.events;
  }
  friend bool operator!=(const FaultPlan& a, const FaultPlan& b) {
    return !(a == b);
  }
};

// Parses a plan spec string: `;`-separated events of the form
//   <kind>@<start><unit>+<duration><unit>[*<magnitude>]
// with kinds chan-stale | chan-garble | chan-fail | latency | stall | crash |
// freeze-fail | freeze-hang | steal | ipi-drop | ipi-dup | ipi-delay |
// port-mask and units ns/us/ms/s, e.g.
//   "stall@500ms+200ms;chan-fail@1s+300ms;steal@2s+100ms*2"
// Returns false (with *error set) on malformed input; `out` is untouched on failure.
bool ParseFaultPlan(const std::string& spec, FaultPlan* out, std::string* error);

}  // namespace vscale

#endif  // VSCALE_SRC_FAULTS_FAULT_PLAN_H_
