#include "src/faults/fault_plan.h"

#include <cctype>
#include <cstdlib>

namespace vscale {

int64_t DefaultMagnitude(FaultKind kind) {
  switch (kind) {
    case FaultKind::kLatencySpike:
      return 10;  // 10x syscall+hypercall latency
    case FaultKind::kFreezeHang:
      return 50;  // 50x master-side op cost
    case FaultKind::kStealBurst:
      return 1;   // one pCPU stolen
    case FaultKind::kIpiDup:
      return 1;   // one extra delivery
    case FaultKind::kIpiDelay:
      return 10;  // 10x ipi_deliver_cost deferral
    case FaultKind::kPortMask:
      return 2;   // masked port = magnitude - 1 -> kPortFreeze
    default:
      return 1;
  }
}

namespace {

bool ParseKind(const std::string& word, FaultKind* out) {
  for (int i = 0; i < kNumFaultKinds; ++i) {
    const FaultKind k = static_cast<FaultKind>(i);
    if (word == ToString(k)) {
      *out = k;
      return true;
    }
  }
  return false;
}

// Parses "<number><unit>" with unit ns|us|ms|s. Advances *pos past the token.
bool ParseDuration(const std::string& s, size_t* pos, TimeNs* out) {
  size_t i = *pos;
  size_t digits = 0;
  int64_t value = 0;
  while (i < s.size() && std::isdigit(static_cast<unsigned char>(s[i]))) {
    value = value * 10 + (s[i] - '0');
    ++i;
    ++digits;
  }
  if (digits == 0) {
    return false;
  }
  TimeNs scale;
  if (s.compare(i, 2, "ns") == 0) {
    scale = 1;
    i += 2;
  } else if (s.compare(i, 2, "us") == 0) {
    scale = 1'000;
    i += 2;
  } else if (s.compare(i, 2, "ms") == 0) {
    scale = 1'000'000;
    i += 2;
  } else if (i < s.size() && s[i] == 's') {
    scale = 1'000'000'000;
    i += 1;
  } else {
    return false;
  }
  *out = value * scale;
  *pos = i;
  return true;
}

bool ParseEvent(const std::string& tok, FaultEvent* ev, std::string* error) {
  const size_t at = tok.find('@');
  if (at == std::string::npos) {
    *error = "missing '@' in \"" + tok + "\"";
    return false;
  }
  if (!ParseKind(tok.substr(0, at), &ev->kind)) {
    *error = "unknown fault kind \"" + tok.substr(0, at) + "\"";
    return false;
  }
  size_t pos = at + 1;
  if (!ParseDuration(tok, &pos, &ev->start)) {
    *error = "bad start time in \"" + tok + "\"";
    return false;
  }
  if (pos >= tok.size() || tok[pos] != '+') {
    *error = "missing '+<duration>' in \"" + tok + "\"";
    return false;
  }
  ++pos;
  if (!ParseDuration(tok, &pos, &ev->duration)) {
    *error = "bad duration in \"" + tok + "\"";
    return false;
  }
  if (pos < tok.size() && tok[pos] == '*') {
    ++pos;
    size_t digits = 0;
    int64_t mag = 0;
    while (pos < tok.size() && std::isdigit(static_cast<unsigned char>(tok[pos]))) {
      mag = mag * 10 + (tok[pos] - '0');
      ++pos;
      ++digits;
    }
    if (digits == 0) {
      *error = "bad magnitude in \"" + tok + "\"";
      return false;
    }
    ev->magnitude = mag;
  }
  if (pos != tok.size()) {
    *error = "trailing junk in \"" + tok + "\"";
    return false;
  }
  if (ev->duration <= 0) {
    *error = "zero duration in \"" + tok + "\"";
    return false;
  }
  return true;
}

}  // namespace

namespace {

// Renders `t` in the largest unit that divides it exactly, so ToString() output
// re-parses to the identical TimeNs.
std::string FormatTimeSpec(TimeNs t) {
  struct Unit {
    TimeNs scale;
    const char* suffix;
  };
  static constexpr Unit kUnits[] = {
      {1'000'000'000, "s"}, {1'000'000, "ms"}, {1'000, "us"}, {1, "ns"}};
  for (const Unit& u : kUnits) {
    if (t % u.scale == 0) {
      return std::to_string(t / u.scale) + u.suffix;
    }
  }
  return std::to_string(t) + "ns";
}

}  // namespace

std::string FaultPlan::ToString() const {
  std::string out;
  for (const FaultEvent& ev : events) {
    if (!out.empty()) {
      out += ';';
    }
    out += vscale::ToString(ev.kind);
    out += '@';
    out += FormatTimeSpec(ev.start);
    out += '+';
    out += FormatTimeSpec(ev.duration);
    if (ev.magnitude > 0) {
      out += '*';
      out += std::to_string(ev.magnitude);
    }
  }
  return out;
}

bool FaultPlan::Parse(const std::string& spec, FaultPlan* out,
                      std::string* error) {
  return ParseFaultPlan(spec, out, error);
}

bool ParseFaultPlan(const std::string& spec, FaultPlan* out, std::string* error) {
  FaultPlan plan;
  plan.seed = out->seed;
  size_t begin = 0;
  while (begin <= spec.size()) {
    size_t end = spec.find(';', begin);
    if (end == std::string::npos) {
      end = spec.size();
    }
    const std::string tok = spec.substr(begin, end - begin);
    if (!tok.empty()) {
      FaultEvent ev;
      std::string err;
      if (!ParseEvent(tok, &ev, &err)) {
        if (error != nullptr) {
          *error = err;
        }
        return false;
      }
      plan.events.push_back(ev);
    }
    if (end == spec.size()) {
      break;
    }
    begin = end + 1;
  }
  *out = std::move(plan);
  return true;
}

}  // namespace vscale
