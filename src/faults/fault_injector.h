// FaultInjector: arms a FaultPlan on the simulation clock and answers the cheap
// site-hook queries (`Active(kind)?`, `Magnitude(kind)?`) the instrumented seams ask
// at their existing decision points. All begin/end transitions are ordinary
// EventQueue events, so a faulted run replays bit-identically; the only randomness a
// fault may consume comes from rng(), forked from the plan seed (det_lint holds
// src/faults/ to a stricter standard than the rest of the tree: no allow() escapes).

#ifndef VSCALE_SRC_FAULTS_FAULT_INJECTOR_H_
#define VSCALE_SRC_FAULTS_FAULT_INJECTOR_H_

#include <cstdint>
#include <functional>

#include "src/base/rng.h"
#include "src/base/time.h"
#include "src/faults/fault_plan.h"
#include "src/sim/event_queue.h"

namespace vscale {

class FaultInjector {
 public:
  FaultInjector(Simulator& sim, FaultPlan plan);

  FaultInjector(const FaultInjector&) = delete;
  FaultInjector& operator=(const FaultInjector&) = delete;

  // Schedules every plan event's begin/end on the simulator. Call once, before
  // running; events whose start already passed begin immediately.
  void Arm();

  // Site-hook queries. Overlapping events of one kind nest: Active() while any is
  // in its window, Magnitude() is the max over the active ones (deterministic in
  // plan order), falling back to DefaultMagnitude when none sets one.
  bool Active(FaultKind kind) const {
    return active_[static_cast<int>(kind)] > 0;
  }
  int64_t Magnitude(FaultKind kind) const;

  // Applies any active latency-spike fault to a channel-path cost.
  TimeNs PerturbLatency(TimeNs cost) const {
    return Active(FaultKind::kLatencySpike)
               ? cost * Magnitude(FaultKind::kLatencySpike)
               : cost;
  }

  // Deterministic noise source for faults that garble data.
  Rng& rng() { return rng_; }

  const FaultPlan& plan() const { return plan_; }
  int64_t events_started() const { return events_started_; }
  int64_t events_ended() const { return events_ended_; }
  int active_count(FaultKind kind) const {
    return active_[static_cast<int>(kind)];
  }

  // Fired after each begin/end transition (state already updated). The Testbed uses
  // this to drive site hooks that are pushes rather than queries (pCPU steal).
  std::function<void(const FaultEvent&, bool began)> on_transition;

 private:
  void Begin(const FaultEvent& ev);
  void End(const FaultEvent& ev);

  Simulator& sim_;
  FaultPlan plan_;
  Rng rng_;
  bool armed_ = false;
  int active_[kNumFaultKinds] = {};
  int64_t events_started_ = 0;
  int64_t events_ended_ = 0;
};

}  // namespace vscale

#endif  // VSCALE_SRC_FAULTS_FAULT_INJECTOR_H_
