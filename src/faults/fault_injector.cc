#include "src/faults/fault_injector.h"

#include <algorithm>

#include "src/base/check.h"
#include "src/base/trace.h"
#include "src/obs/coverage.h"

namespace vscale {

FaultInjector::FaultInjector(Simulator& sim, FaultPlan plan)
    : sim_(sim), plan_(std::move(plan)), rng_(Rng(plan_.seed).Fork(0xFA017)) {}

void FaultInjector::Arm() {
  if (armed_) {
    return;
  }
  armed_ = true;
  const TimeNs now = sim_.Now();
  for (const FaultEvent& ev : plan_.events) {
    // Copy by value into the closures: the plan vector never changes after Arm,
    // but value capture keeps the events independent of this object's layout.
    const FaultEvent e = ev;
    sim_.ScheduleAt(std::max(now, e.start), [this, e] { Begin(e); });
    sim_.ScheduleAt(std::max(now, e.end()), [this, e] { End(e); });
  }
}

int64_t FaultInjector::Magnitude(FaultKind kind) const {
  // A magnitude only means anything inside an active window: outside one, the
  // scan below silently falls back to DefaultMagnitude even when the plan
  // carries a (stale, expired) magnitude for the kind. Every call site gates on
  // Active() first; hold them to it in checked builds.
  VS_INVARIANT(Active(kind), "Magnitude(%s) queried outside an active window",
               ToString(kind));
  const TimeNs now = sim_.Now();
  int64_t best = 0;
  for (const FaultEvent& ev : plan_.events) {
    if (ev.kind == kind && ev.magnitude > 0 && ev.start <= now && now < ev.end()) {
      best = std::max(best, ev.magnitude);
    }
  }
  return best > 0 ? best : DefaultMagnitude(kind);
}

void FaultInjector::Begin(const FaultEvent& ev) {
  ++active_[static_cast<int>(ev.kind)];
  ++events_started_;
  VS_COVER(OnFaultBegin(static_cast<int>(ev.kind)));
  VSCALE_TRACE_INSTANT_ARG(sim_.Now(), TraceCategory::kVscale, "fault_begin", -1, -1,
                           -1, ToString(ev.kind), ev.magnitude);
  if (on_transition) {
    on_transition(ev, /*began=*/true);
  }
}

void FaultInjector::End(const FaultEvent& ev) {
  --active_[static_cast<int>(ev.kind)];
  ++events_ended_;
  VSCALE_TRACE_INSTANT_ARG(sim_.Now(), TraceCategory::kVscale, "fault_end", -1, -1,
                           -1, ToString(ev.kind), ev.magnitude);
  if (on_transition) {
    on_transition(ev, /*began=*/false);
  }
}

}  // namespace vscale
