#include "src/hypervisor/vscale_channel.h"

namespace vscale {

VscaleChannel::ReadResult VscaleChannel::Read() {
  const TimeNs cost = cost_.channel_syscall + cost_.channel_hypercall;
  ++reads_;
  total_cost_ += cost;
  return ReadResult{hv_.ReadExtendability(dom_), cost};
}

}  // namespace vscale
