#include "src/hypervisor/vscale_channel.h"

#include "src/obs/coverage.h"

namespace vscale {

VscaleChannel::ReadResult VscaleChannel::Read() {
  ReadResult r;
  // The syscall+hypercall round trip happens (and is billed) before any outcome is
  // known — a failing SCHEDOP_getvscaleinfo costs what a succeeding one does.
  r.cost = cost_.channel_syscall + cost_.channel_hypercall;
  if (faults_ != nullptr) {
    r.cost = faults_->PerturbLatency(r.cost);
  }
  total_cost_ += r.cost;

  if (faults_ != nullptr && faults_->Active(FaultKind::kChannelFail)) {
    ++reads_failed_;
    return r;  // ok stays false; caller still charges r.cost
  }

  ChannelPayload p = hv_.ReadChannelPayload(dom_);
  if (faults_ != nullptr && faults_->Active(FaultKind::kChannelStale)) {
    // The mailbox appears wedged: keep returning the payload captured when the
    // window opened. seq stops advancing, which is the daemon's staleness signal.
    if (!stale_valid_) {
      stale_copy_ = p;
      stale_valid_ = true;
    }
    p = stale_copy_;
  } else {
    stale_valid_ = false;
  }
  if (faults_ != nullptr && faults_->Active(FaultKind::kChannelGarbled)) {
    // A torn read: the value changes under the reader without a matching restamp.
    p.nvcpus += 1 + static_cast<int>(faults_->rng().NextBelow(7));
  }
  // Valid-stamp check (seq 0 = mailbox never written: an honest empty payload).
  if (p.seq != 0 && p.stamp != ChannelStamp(p.seq, p.nvcpus)) {
    ++reads_failed_;
    ++torn_rejected_;
    VS_COVER(Record(CoveragePoint::kTornReadRejected));
    return r;
  }

  ++reads_;
  r.ok = true;
  r.extendability_nvcpus = p.nvcpus;
  r.seq = p.seq;
  return r;
}

}  // namespace vscale
