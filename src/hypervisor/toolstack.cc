#include "src/hypervisor/toolstack.h"

namespace vscale {

TimeNs Dom0Toolstack::SamplePerVmRead(Dom0Load load) {
  // Base path: XenStore transaction + domain-info hypercalls, with modest jitter.
  TimeNs latency = cost_.libxl_per_vm_read + rng_.NormalTime(0, Microseconds(25));
  switch (load) {
    case Dom0Load::kIdle:
      break;
    case Dom0Load::kDiskIo:
      // Block-backend work shares dom0's cores with the toolstack; the extra delay is
      // bursty (an exponential queueing term), occasionally hitting scheduling slices.
      latency += rng_.ExponentialTime(cost_.libxl_disk_io_penalty_mean);
      if (rng_.Chance(0.004)) {
        latency += rng_.UniformTime(Milliseconds(2), Milliseconds(10));
      }
      break;
    case Dom0Load::kNetIo:
      // netback processing is per-packet and hungrier than blkback.
      latency += rng_.ExponentialTime(cost_.libxl_net_io_penalty_mean);
      if (rng_.Chance(0.008)) {
        latency += rng_.UniformTime(Milliseconds(5), Milliseconds(25));
      }
      break;
  }
  return latency < 0 ? 0 : latency;
}

TimeNs Dom0Toolstack::SampleMonitorAllVms(int n_vms, Dom0Load load) {
  TimeNs total = 0;
  for (int i = 0; i < n_vms; ++i) {
    total += SamplePerVmRead(load);
  }
  return total;
}

RunningStat Dom0Toolstack::MeasureMonitorCost(int n_vms, Dom0Load load, int iterations) {
  RunningStat stat;
  for (int i = 0; i < iterations; ++i) {
    stat.Add(ToMilliseconds(SampleMonitorAllVms(n_vms, load)));
  }
  return stat;
}

}  // namespace vscale
