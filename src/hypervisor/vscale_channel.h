// The vScale channel: a per-VM mailbox between the hypervisor scheduler and the guest
// (paper sections 3, 4.1, Table 1).
//
// The data itself lives in Domain (extendability_nvcpus / extendability_ns), written by
// the vScale ticker and read through HvServices::ReadExtendability. This class models
// the *cost* of the read path — sys_getvscaleinfo (a system call) followed by
// SCHEDOP_getvscaleinfo (a hypercall) — and keeps the operation-count statistics the
// Table 1 bench reports. It bypasses dom0 entirely, unlike the libxl toolstack path.

#ifndef VSCALE_SRC_HYPERVISOR_VSCALE_CHANNEL_H_
#define VSCALE_SRC_HYPERVISOR_VSCALE_CHANNEL_H_

#include <cstdint>

#include "src/base/cost_model.h"
#include "src/base/time.h"
#include "src/hypervisor/hv_services.h"
#include "src/hypervisor/types.h"

namespace vscale {

class VscaleChannel {
 public:
  VscaleChannel(HvServices& hv, const CostModel& cost, DomainId dom)
      : hv_(hv), cost_(cost), dom_(dom) {}

  struct ReadResult {
    int extendability_nvcpus;
    TimeNs cost;  // syscall + hypercall
  };

  // Reads the domain's extendability. The returned cost must be charged to the calling
  // thread by the guest (the daemon does this).
  ReadResult Read();

  // Cost breakdown used by the Table 1 bench.
  TimeNs syscall_cost() const { return cost_.channel_syscall; }
  TimeNs hypercall_cost() const { return cost_.channel_hypercall; }

  int64_t reads() const { return reads_; }
  TimeNs total_cost() const { return total_cost_; }

 private:
  HvServices& hv_;
  const CostModel& cost_;
  DomainId dom_;
  int64_t reads_ = 0;
  TimeNs total_cost_ = 0;
};

}  // namespace vscale

#endif  // VSCALE_SRC_HYPERVISOR_VSCALE_CHANNEL_H_
