// The vScale channel: a per-VM mailbox between the hypervisor scheduler and the guest
// (paper sections 3, 4.1, Table 1).
//
// The data itself lives in Domain (extendability mailbox + seq/valid-stamp), written
// by the vScale ticker and read through HvServices::ReadChannelPayload. This class
// models the *cost* of the read path — sys_getvscaleinfo (a system call) followed by
// SCHEDOP_getvscaleinfo (a hypercall) — keeps the operation-count statistics the
// Table 1 bench reports, and implements the reader half of the hardening protocol:
// a read whose payload fails the valid-stamp check is a torn read and is rejected;
// a read that fails outright (fault plane) still charges its full cost and counts
// into reads_failed. Site hooks for the fault plane (docs/FAULTS.md):
// kChannelFail / kChannelStale / kChannelGarbled / kLatencySpike.

#ifndef VSCALE_SRC_HYPERVISOR_VSCALE_CHANNEL_H_
#define VSCALE_SRC_HYPERVISOR_VSCALE_CHANNEL_H_

#include <cstdint>

#include "src/base/cost_model.h"
#include "src/base/time.h"
#include "src/faults/fault_injector.h"
#include "src/hypervisor/hv_services.h"
#include "src/hypervisor/types.h"

namespace vscale {

class VscaleChannel {
 public:
  VscaleChannel(HvServices& hv, const CostModel& cost, DomainId dom)
      : hv_(hv), cost_(cost), dom_(dom) {}

  struct ReadResult {
    bool ok = false;             // false: read failed or payload rejected as torn
    int extendability_nvcpus = 0;
    uint64_t seq = 0;            // writer sequence; the daemon's staleness signal
    TimeNs cost = 0;             // syscall + hypercall — charged even on failure
  };

  // Reads the domain's extendability. The returned cost must be charged to the
  // calling thread by the guest (the daemon does this) whether or not ok is set:
  // a failed syscall still burns its entry/exit and hypercall time.
  ReadResult Read();

  // Optional fault plane; null = no faults (the default, zero-overhead path).
  void set_fault_injector(FaultInjector* injector) { faults_ = injector; }

  // Cost breakdown used by the Table 1 bench.
  TimeNs syscall_cost() const { return cost_.channel_syscall; }
  TimeNs hypercall_cost() const { return cost_.channel_hypercall; }

  int64_t reads() const { return reads_; }          // successful reads only
  int64_t reads_failed() const { return reads_failed_; }
  int64_t torn_rejected() const { return torn_rejected_; }
  TimeNs total_cost() const { return total_cost_; }

 private:
  HvServices& hv_;
  const CostModel& cost_;
  DomainId dom_;
  FaultInjector* faults_ = nullptr;
  int64_t reads_ = 0;
  int64_t reads_failed_ = 0;
  int64_t torn_rejected_ = 0;  // subset of reads_failed_: stamp check caught a tear
  TimeNs total_cost_ = 0;
  // Payload frozen at the start of a kChannelStale window (what the reader keeps
  // seeing while the mailbox appears wedged).
  ChannelPayload stale_copy_;
  bool stale_valid_ = false;
};

}  // namespace vscale

#endif  // VSCALE_SRC_HYPERVISOR_VSCALE_CHANNEL_H_
