// Domain (VM) and vCPU bookkeeping for the hypervisor scheduler.

#ifndef VSCALE_SRC_HYPERVISOR_DOMAIN_H_
#define VSCALE_SRC_HYPERVISOR_DOMAIN_H_

#include <memory>
#include <string>
#include <vector>

#include "src/base/histogram.h"
#include "src/base/time.h"
#include "src/hypervisor/types.h"
#include "src/sim/event_queue.h"

namespace vscale {

class Domain;
class GuestOs;

// Per-vCPU hypervisor state. Owned by its Domain, which stores vCPUs by value in
// one contiguous array (fixed at domain creation, so Vcpu* stay stable).
//
// Field order is deliberate: the members every scheduling decision reads —
// identity, state/priority flags, the settle/slice clocks and the advance event
// — are packed into the leading cache line; lifetime statistics, which only
// reports read, trail behind it.
class Vcpu {
 public:
  Vcpu(Domain* domain, VcpuId id) : domain_(domain), id_(id) {}

  Domain* domain() const { return domain_; }
  VcpuId id() const { return id_; }

  // --- hot: read/written by every dispatch, settle, wake and queue operation ---
  VcpuState state = VcpuState::kBlocked;
  CreditPriority priority = CreditPriority::kUnder;
  bool frozen = false;           // guest marked it frozen (vScale) — stays blocked
  bool polling = false;          // blocked in SCHEDOP_poll on poll_port
  PcpuId pcpu = -1;              // pCPU currently running on, or last ran on
  EvtchnPort poll_port = -1;

  // Credit accounting: entitled-but-unconsumed CPU time. Positive => UNDER.
  TimeNs credit_ns = 0;
  TimeNs slice_end = 0;          // end of the current scheduling slice
  TimeNs run_since = 0;          // when it was last placed on a pCPU
  TimeNs last_settle = 0;        // last time runtime was settled
  TimeNs wait_since = 0;         // when it entered kRunnable

  Simulator::EventId advance_event = Simulator::kInvalidEvent;

  // BOOST grants consumed this accounting period (reset by Accounting); only
  // consulted when MachineConfig::boost_budget > 0.
  int boost_used = 0;

  // --- cold: lifetime statistics, read only when reporting ---
  TimeNs total_runtime = 0;
  TimeNs total_wait = 0;         // time spent runnable-but-not-running (paper Fig. 9)
  TimeNs total_blocked = 0;
  int64_t preemptions = 0;
  int64_t wakeups = 0;

 private:
  Domain* domain_;
  VcpuId id_;
};

// A VM. Weight is per-domain (vScale's Xen 4.5 patch, paper section 4.2) so freezing
// vCPUs never changes the aggregate entitlement.
class Domain {
 public:
  Domain(DomainId id, std::string name, int weight, int n_vcpus);

  DomainId id() const { return id_; }
  const std::string& name() const { return name_; }

  int weight() const { return weight_; }
  void set_weight(int w) { weight_ = w; }

  // Cap on CPU consumption as a fraction of one pCPU (0 = uncapped). E.g. 2.5 means at
  // most 2.5 pCPUs worth of time per accounting period.
  double cap_pcpus() const { return cap_pcpus_; }
  void set_cap_pcpus(double cap) { cap_pcpus_ = cap; }
  // Reservation (lower bound) in pCPUs, honored by the extendability calculation.
  double reservation_pcpus() const { return reservation_pcpus_; }
  void set_reservation_pcpus(double r) { reservation_pcpus_ = r; }

  int n_vcpus() const { return static_cast<int>(vcpus_.size()); }
  Vcpu& vcpu(VcpuId id) { return vcpus_[static_cast<size_t>(id)]; }
  const Vcpu& vcpu(VcpuId id) const { return vcpus_[static_cast<size_t>(id)]; }

  // Active (credit-earning) vCPUs: not frozen.
  int n_active_vcpus() const;
  // Hypervisor-side view of frozen vCPUs, bit i = vcpu i. The tri-state
  // reconciler (src/vscale/reconciler.cc) cross-checks this against the guest's
  // cpu_freeze_mask to catch a lost/garbled freeze handshake.
  uint64_t hv_freeze_mask() const;

  GuestOs* guest() const { return guest_; }
  void set_guest(GuestOs* guest) { guest_ = guest; }

  // --- vScale channel mailbox (written by the vScale ticker, read via hypercall) ---
  // Extendability expressed as optimal active vCPU count (Algorithm 1 line 11/18).
  int extendability_nvcpus = 0;
  // Raw extendability in ns of CPU per recalculation period (for diagnostics/tests).
  TimeNs extendability_ns = 0;
  // Mailbox write sequence (bumped by every WriteExtendability; 0 = never written)
  // and the matching valid-stamp — the staleness/torn-read protocol the hardened
  // daemon checks (see ChannelPayload in types.h and docs/FAULTS.md).
  uint64_t extendability_seq = 0;
  uint64_t extendability_stamp = 0;

  // --- per-recalc-window consumption tracking (input to Algorithm 1) ---
  TimeNs consumed_in_window = 0;
  // Runnable-but-waiting time in the window: unmet demand. Separating "didn't want"
  // from "couldn't get" keeps contention shortfall from being misread as slack.
  TimeNs waited_in_window = 0;
  // Consumption within the current *accounting* window, for cap enforcement.
  TimeNs consumed_in_acct_window = 0;
  // Runnable-wait accrued within the current accounting window. Input to the
  // time-based activity classification (MachineConfig::acct_time_based);
  // maintained unconditionally, read only when that flag is on.
  TimeNs waited_in_acct_window = 0;
  bool capped_out = false;  // exceeded cap this accounting window; vCPUs parked

  TimeNs TotalRuntime() const;
  TimeNs TotalWait() const;

  // Distribution of individual scheduling-delay episodes (runnable -> running).
  LatencyHistogram wait_histogram;

 private:
  DomainId id_;
  std::string name_;
  int weight_;
  double cap_pcpus_ = 0.0;
  double reservation_pcpus_ = 0.0;
  // By value and contiguous: the scheduler's per-domain sweeps (accounting,
  // freeze seeding, window demand) walk vCPUs in order, and the count is fixed
  // at construction so addresses handed out as Vcpu* never move.
  std::vector<Vcpu> vcpus_;
  GuestOs* guest_ = nullptr;
};

}  // namespace vscale

#endif  // VSCALE_SRC_HYPERVISOR_DOMAIN_H_
