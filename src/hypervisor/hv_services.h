// Services a guest kernel may request from the hypervisor (hypercall surface plus the
// simulation-control hooks the co-simulation needs). Implemented by Machine.

#ifndef VSCALE_SRC_HYPERVISOR_HV_SERVICES_H_
#define VSCALE_SRC_HYPERVISOR_HV_SERVICES_H_

#include <cstdint>

#include "src/base/rng.h"
#include "src/base/time.h"
#include "src/hypervisor/types.h"

namespace vscale {

class HvServices {
 public:
  virtual ~HvServices() = default;

  virtual TimeNs Now() const = 0;
  virtual Rng& rng() = 0;

  // SCHEDOP_block: the calling vCPU has nothing to run and gives up its pCPU. The guest
  // calls this from OnDeadline (never re-entrantly from Advance).
  virtual void BlockVcpu(DomainId dom, VcpuId vcpu) = 0;

  // Event-channel notify targeting a vCPU: wakes it with BOOST eligibility if blocked,
  // marks the port pending otherwise. `urgent` additionally tickles the scheduler so a
  // runnable-but-queued target gets priority (vScale's freeze/unfreeze IPI fast path,
  // paper section 4.2).
  virtual void NotifyEvent(DomainId dom, VcpuId target, EvtchnPort port,
                           bool urgent = false) = 0;

  // SCHEDOP_yield: give up the pCPU but stay runnable (pv-spinlock slow path).
  virtual void YieldVcpu(DomainId dom, VcpuId vcpu) = 0;

  // Poll-block until `port` is notified (pv-spinlock SCHEDOP_poll analogue).
  virtual void PollVcpu(DomainId dom, VcpuId vcpu, EvtchnPort port) = 0;

  // SCHEDOP_freezecpu: the guest marked `vcpu` frozen/unfrozen; the hypervisor removes
  // it from / returns it to the domain's active (credit-earning) list.
  virtual void NotifyFreeze(DomainId dom, VcpuId vcpu, bool frozen) = 0;

  // SCHEDOP_getvscaleinfo: read the domain's CPU extendability mailbox. Returns the
  // optimal active-vCPU count computed by the vScale ticker (0 if never computed).
  virtual int ReadExtendability(DomainId dom) = 0;

  // Full-mailbox variant of the same hypercall: extendability plus the writer's
  // sequence number and valid-stamp, so the guest can detect stale and torn reads
  // (the hardened channel protocol; VscaleChannel::Read is the only caller).
  virtual ChannelPayload ReadChannelPayload(DomainId dom) = 0;

  // The guest changed the state of a RUNNING vCPU from *outside* that vCPU's own
  // Advance/OnDeadline flow (e.g. another vCPU released a spin variable it waits on).
  // The hypervisor settles and recomputes the advance deadline.
  virtual void VcpuStateChanged(DomainId dom, VcpuId vcpu) = 0;
};

}  // namespace vscale

#endif  // VSCALE_SRC_HYPERVISOR_HV_SERVICES_H_
