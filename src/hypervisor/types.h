// Shared identifiers and enums for the hypervisor layer.

#ifndef VSCALE_SRC_HYPERVISOR_TYPES_H_
#define VSCALE_SRC_HYPERVISOR_TYPES_H_

#include <cstdint>

#include "src/base/time.h"

namespace vscale {

using DomainId = int;
using VcpuId = int;   // domain-local vCPU index
using PcpuId = int;
using EvtchnPort = int;

// Hypervisor-visible vCPU run state. A guest-frozen vCPU is simply kBlocked with
// Vcpu::frozen set: Xen never tears vCPUs down (paper section 6).
enum class VcpuState {
  kRunning,   // currently occupying a pCPU
  kRunnable,  // waiting in a pCPU run queue (this is the "scheduling delay" state)
  kBlocked,   // voluntarily blocked (guest idle / SCHEDOP_block / pv-lock yield)
};

// Xen credit1 priorities, ordered best-first.
enum class CreditPriority : int {
  kBoost = 0,  // woken from block by an event; may preempt
  kUnder = 1,  // positive credit balance
  kOver = 2,   // exhausted credits; runs only work-conservingly
};

// The vScale channel mailbox as the guest reads it through SCHEDOP_getvscaleinfo.
// `seq` increments on every ticker write (0 = never written); `stamp` is a mixing
// function of (seq, nvcpus) recomputed by the writer, so a reader that observes a
// value without its matching stamp has seen a torn/garbled payload and must reject
// it, and a reader whose seq stops advancing is looking at stale data. This is the
// hardened control plane's staleness/validity protocol (docs/FAULTS.md).
struct ChannelPayload {
  int nvcpus = 0;        // extendability as an optimal active-vCPU count
  TimeNs ext_ns = 0;     // raw extendability (diagnostics)
  uint64_t seq = 0;      // writer sequence number; 0 = mailbox never written
  uint64_t stamp = 0;    // ChannelStamp(seq, nvcpus) as of the last honest write
};

// splitmix64-style finalizer over the (seq, value) pair. Cheap, deterministic, and
// any single-field perturbation changes it — all a torn-read detector needs.
inline uint64_t ChannelStamp(uint64_t seq, int nvcpus) {
  uint64_t x = seq * 0x9e3779b97f4a7c15ull ^
               (static_cast<uint64_t>(static_cast<int64_t>(nvcpus)) +
                0xd1b54a32d192ed03ull);
  x ^= x >> 30;
  x *= 0xbf58476d1ce4e5b9ull;
  x ^= x >> 27;
  x *= 0x94d049bb133111ebull;
  x ^= x >> 31;
  return x;
}

inline const char* ToString(VcpuState s) {
  switch (s) {
    case VcpuState::kRunning:
      return "running";
    case VcpuState::kRunnable:
      return "runnable";
    case VcpuState::kBlocked:
      return "blocked";
  }
  return "?";
}

inline const char* ToString(CreditPriority p) {
  switch (p) {
    case CreditPriority::kBoost:
      return "BOOST";
    case CreditPriority::kUnder:
      return "UNDER";
    case CreditPriority::kOver:
      return "OVER";
  }
  return "?";
}

}  // namespace vscale

#endif  // VSCALE_SRC_HYPERVISOR_TYPES_H_
