// Shared identifiers and enums for the hypervisor layer.

#ifndef VSCALE_SRC_HYPERVISOR_TYPES_H_
#define VSCALE_SRC_HYPERVISOR_TYPES_H_

#include <cstdint>

namespace vscale {

using DomainId = int;
using VcpuId = int;   // domain-local vCPU index
using PcpuId = int;
using EvtchnPort = int;

// Hypervisor-visible vCPU run state. A guest-frozen vCPU is simply kBlocked with
// Vcpu::frozen set: Xen never tears vCPUs down (paper section 6).
enum class VcpuState {
  kRunning,   // currently occupying a pCPU
  kRunnable,  // waiting in a pCPU run queue (this is the "scheduling delay" state)
  kBlocked,   // voluntarily blocked (guest idle / SCHEDOP_block / pv-lock yield)
};

// Xen credit1 priorities, ordered best-first.
enum class CreditPriority : int {
  kBoost = 0,  // woken from block by an event; may preempt
  kUnder = 1,  // positive credit balance
  kOver = 2,   // exhausted credits; runs only work-conservingly
};

inline const char* ToString(VcpuState s) {
  switch (s) {
    case VcpuState::kRunning:
      return "running";
    case VcpuState::kRunnable:
      return "runnable";
    case VcpuState::kBlocked:
      return "blocked";
  }
  return "?";
}

inline const char* ToString(CreditPriority p) {
  switch (p) {
    case CreditPriority::kBoost:
      return "BOOST";
    case CreditPriority::kUnder:
      return "UNDER";
    case CreditPriority::kOver:
      return "OVER";
  }
  return "?";
}

}  // namespace vscale

#endif  // VSCALE_SRC_HYPERVISOR_TYPES_H_
