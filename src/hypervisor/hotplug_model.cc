#include "src/hypervisor/hotplug_model.h"

namespace vscale {

const std::vector<HotplugLatencyParams>& HotplugKernelModels() {
  // Parameters fitted to the CDFs of Figure 5: removal costs cluster in the tens of
  // milliseconds with >100 ms tails on every kernel; addition is 350-500 us at best on
  // 3.14.15 and tens of milliseconds on the other three.
  static const std::vector<HotplugLatencyParams> kModels = {
      {"v2.6.32", Milliseconds(8), Milliseconds(55), 0.55,
       Milliseconds(5), Milliseconds(30), 0.50},
      {"v3.2.60", Milliseconds(5), Milliseconds(40), 0.55,
       Milliseconds(4), Milliseconds(22), 0.50},
      {"v3.14.15", Milliseconds(3), Milliseconds(25), 0.60,
       Microseconds(350), Microseconds(430), 0.15},
      {"v4.2", Milliseconds(2), Milliseconds(18), 0.60,
       Milliseconds(2), Milliseconds(12), 0.45},
  };
  return kModels;
}

TimeNs HotplugModel::SampleRemove() {
  const double extra = rng_.LogNormal(
      static_cast<double>(params_.remove_median - params_.remove_floor),
      params_.remove_sigma);
  return params_.remove_floor + static_cast<TimeNs>(extra);
}

TimeNs HotplugModel::SampleAdd() {
  const double extra = rng_.LogNormal(
      static_cast<double>(params_.add_median - params_.add_floor), params_.add_sigma);
  return params_.add_floor + static_cast<TimeNs>(extra);
}

}  // namespace vscale
