// Latency models for Linux CPU hotplug across kernel versions (paper Figure 5) and the
// libxl/XenStore path dom0 uses to trigger it.
//
// Linux hotplug serializes the machine through stop_machine() and runs dozens of
// subsystem notifiers; its latency is heavy-tailed. We model each kernel version's
// add/remove latency as floor + log-normal, with parameters chosen to match the CDFs
// reported in the paper (remove: a few ms to >100 ms; add: 350-500 us at best on 3.14,
// tens of ms on older kernels).

#ifndef VSCALE_SRC_HYPERVISOR_HOTPLUG_MODEL_H_
#define VSCALE_SRC_HYPERVISOR_HOTPLUG_MODEL_H_

#include <string>
#include <vector>

#include "src/base/rng.h"
#include "src/base/time.h"

namespace vscale {

struct HotplugLatencyParams {
  std::string kernel;
  // CPU-remove (unplug): stop_machine + CPU_DYING notifiers.
  TimeNs remove_floor;
  TimeNs remove_median;
  double remove_sigma;
  // CPU-add (plug): notifier chain, no stop_machine on modern kernels.
  TimeNs add_floor;
  TimeNs add_median;
  double add_sigma;
};

// The four kernel versions evaluated in the paper.
const std::vector<HotplugLatencyParams>& HotplugKernelModels();

class HotplugModel {
 public:
  HotplugModel(const HotplugLatencyParams& params, Rng rng)
      : params_(params), rng_(rng) {}

  const std::string& kernel() const { return params_.kernel; }

  // Samples one CPU-remove / CPU-add latency.
  TimeNs SampleRemove();
  TimeNs SampleAdd();

 private:
  HotplugLatencyParams params_;
  Rng rng_;
};

}  // namespace vscale

#endif  // VSCALE_SRC_HYPERVISOR_HOTPLUG_MODEL_H_
