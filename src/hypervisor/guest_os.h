// Interface the hypervisor uses to drive a guest operating system.
//
// The co-simulation contract: while a vCPU runs on a pCPU, the hypervisor keeps exactly
// one pending "advance" event for it at the earliest interesting boundary
// (min(guest-internal event, slice end)). Whenever anything happens to the vCPU, the
// hypervisor settles elapsed time into the guest via Advance() and re-asks
// NextEventDelta(). The guest never schedules simulator events for its own running
// vCPUs; it reports boundaries through NextEventDelta and reacts in OnDeadline. For
// non-running vCPUs the guest acts through HvServices (wake, IPI, state-changed).

#ifndef VSCALE_SRC_HYPERVISOR_GUEST_OS_H_
#define VSCALE_SRC_HYPERVISOR_GUEST_OS_H_

#include "src/base/time.h"
#include "src/hypervisor/types.h"

namespace vscale {

class GuestOs {
 public:
  virtual ~GuestOs() = default;

  // The vCPU was placed on a pCPU and starts consuming cycles at `now`. Pending virtual
  // interrupts (coalesced timer ticks, queued IPIs, I/O events) should be accepted here;
  // their handling cost is charged to subsequent Advance() time.
  virtual void OnScheduledIn(VcpuId vcpu, TimeNs now) = 0;

  // The vCPU lost its pCPU (preemption, block, or yield) after being settled.
  virtual void OnDescheduled(VcpuId vcpu, TimeNs now) = 0;

  // Consume `elapsed` nanoseconds of CPU on this running vCPU. Must not call back into
  // HvServices scheduling operations (pure accounting).
  virtual void Advance(VcpuId vcpu, TimeNs elapsed) = 0;

  // With the vCPU running from Now(), how long until its next internal boundary
  // (segment completion, spin-budget expiry, guest timer tick, ...)? kTimeNever if it
  // would run forever undisturbed.
  virtual TimeNs NextEventDelta(VcpuId vcpu) = 0;

  // The boundary promised by NextEventDelta arrived (elapsed time already settled via
  // Advance). The guest may block the vCPU, wake others, etc. through HvServices.
  virtual void OnDeadline(VcpuId vcpu) = 0;

  // An event-channel notification (virtual IPI or I/O interrupt) reached this vCPU while
  // it is RUNNING. Elapsed time has been settled. Non-running vCPUs get their events on
  // the next OnScheduledIn.
  virtual void DeliverEvent(VcpuId vcpu, EvtchnPort port) = 0;
};

}  // namespace vscale

#endif  // VSCALE_SRC_HYPERVISOR_GUEST_OS_H_
