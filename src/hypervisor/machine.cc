#include "src/hypervisor/machine.h"

#include <algorithm>
#include <cassert>

#include "src/base/check.h"
#include "src/base/log.h"
#include "src/base/trace.h"
#include "src/obs/coverage.h"
#include "src/obs/stall_accounting.h"

namespace vscale {

Machine::Machine(MachineConfig config)
    : config_(std::move(config)), rng_(config_.seed) {
  pcpus_.resize(static_cast<size_t>(config_.n_pcpus));
  for (int i = 0; i < config_.n_pcpus; ++i) {
    pcpus_[static_cast<size_t>(i)].id = i;
  }
  tick_task_ = std::make_unique<PeriodicTask>(sim_, config_.cost.hv_tick_period,
                                              [this] { HvTick(); });
  acct_task_ = std::make_unique<PeriodicTask>(sim_, config_.cost.hv_accounting_period,
                                              [this] { Accounting(); });
  tick_task_->Start();
  acct_task_->Start();
}

Machine::~Machine() = default;

Domain& Machine::CreateDomain(const std::string& name, int weight, int n_vcpus) {
  const DomainId id = static_cast<DomainId>(domains_.size());
  if (VSCALE_TRACE_ACTIVE()) {
    GlobalTracer().SetDomainName(id, name);
  }
  domains_.push_back(std::make_unique<Domain>(id, name, weight, n_vcpus));
  int base = domain_vcpu_base_.empty()
                 ? 0
                 : domain_vcpu_base_.back() + domains_[domains_.size() - 2]->n_vcpus();
  domain_vcpu_base_.push_back(base);
  pending_ports_.resize(static_cast<size_t>(base + n_vcpus));
  Domain& d = *domains_.back();
  // New vCPUs start blocked with a fresh credit balance so first wakeups boost.
  for (int i = 0; i < n_vcpus; ++i) {
    Vcpu& v = d.vcpu(i);
    v.credit_ns = config_.cost.hv_accounting_period;
    v.priority = CreditPriority::kUnder;
    v.wait_since = sim_.Now();
    VSCALE_STALL_HOOK(OnVcpuCreated(id, i, sim_.Now()));
  }
  return d;
}

int Machine::GlobalIndex(const Vcpu& v) const {
  return domain_vcpu_base_[static_cast<size_t>(v.domain()->id())] + v.id();
}

void Machine::StartVcpu(DomainId dom, VcpuId vcpu) {
  Vcpu& v = GetVcpu(dom, vcpu);
  if (v.state == VcpuState::kBlocked) {
    WakeVcpu(v, /*boost_eligible=*/false);
  }
}

// ---------------------------------------------------------------------------
// Run-queue maintenance
// ---------------------------------------------------------------------------

void Machine::InsertRunnable(Vcpu& v, bool at_head_of_prio, bool tickle_idlers) {
  assert(v.state == VcpuState::kRunnable);
  Pcpu* p = nullptr;
  if (v.pcpu >= 0) {
    p = &pcpus_[static_cast<size_t>(v.pcpu)];
    if (p->stolen) {
      p = nullptr;  // affinity target lost to a steal burst: place like a fresh wake
    }
  }
  if (p == nullptr || (p->current != nullptr && tickle_idlers)) {
    // Wake placement: an idle pCPU if there is one (Xen tickles idlers), otherwise
    // stay on the previous pCPU (v->processor affinity). Sticky placement is what
    // concentrates queues under load and produces the paper's tens-of-milliseconds
    // scheduling delays.
    if (Pcpu* idle = FindIdlePcpu()) {
      p = idle;
    } else if (p == nullptr || config_.wake_spreads_load) {
      Pcpu* best = p;
      for (auto& cand : pcpus_) {
        if (cand.stolen) {
          continue;
        }
        if (best == nullptr || cand.runq.size() < best->runq.size()) {
          best = &cand;
        }
      }
      p = best;
    }
  }
  v.pcpu = p->id;
  auto& q = p->runq;
  auto pos = q.begin();
  if (at_head_of_prio) {
    while (pos != q.end() && (*pos)->priority < v.priority) {
      ++pos;
    }
  } else {
    while (pos != q.end() && (*pos)->priority <= v.priority) {
      ++pos;
    }
  }
  q.insert(pos, &v);
  if (p->current == nullptr) {
    ScheduleDecision(*p);
  } else {
    MaybePreempt(*p);
  }
}

void Machine::RemoveFromRunq(Vcpu& v) {
  if (v.pcpu < 0) {
    return;
  }
  auto& q = pcpus_[static_cast<size_t>(v.pcpu)].runq;
  auto it = std::find(q.begin(), q.end(), &v);
  if (it != q.end()) {
    q.erase(it);
  }
}

Machine::Pcpu* Machine::FindIdlePcpu() {
  for (auto& p : pcpus_) {
    if (p.current == nullptr && !p.stolen) {
      return &p;
    }
  }
  return nullptr;
}

bool Machine::Schedulable(const Vcpu& v) const {
  // Note: frozen vCPUs stay schedulable — the freeze flag only removes them from the
  // credit distribution (csched_acct). They still need the pCPU briefly to run their
  // evacuation, after which they block voluntarily and never wake until unfrozen.
  return !v.domain()->capped_out;
}

Vcpu* Machine::PickFromRunq(Pcpu& p) {
  for (auto it = p.runq.begin(); it != p.runq.end(); ++it) {
    if (Schedulable(**it)) {
      Vcpu* v = *it;
      p.runq.erase(it);
      return v;
    }
  }
  return nullptr;
}

Vcpu* Machine::StealWork(Pcpu& thief) {
  Vcpu* best = nullptr;
  Pcpu* victim = nullptr;
  for (auto& p : pcpus_) {
    if (p.id == thief.id) {
      continue;
    }
    for (Vcpu* v : p.runq) {
      if (!Schedulable(*v)) {
        continue;
      }
      if (best == nullptr || v->priority < best->priority) {
        best = v;
        victim = &p;
      }
      break;  // runq is priority-sorted; first schedulable is this queue's best
    }
  }
  if (best != nullptr) {
    auto& q = victim->runq;
    q.erase(std::find(q.begin(), q.end(), best));
  }
  return best;
}

// ---------------------------------------------------------------------------
// Dispatch
// ---------------------------------------------------------------------------

void Machine::ScheduleDecision(Pcpu& p) {
  if (p.current != nullptr || p.stolen) {
    return;
  }
  // Under time-based accounting (docs/ADVERSARIAL.md): local-first dispatch
  // lets a credit-exhausted vCPU win a vacated pCPU while UNDER work sits
  // parked on a busy neighbour — the parking half of the tick-evader and
  // boost-abuser takes. If the best local candidate is OVER, prefer the best
  // better-priority parked vCPU anywhere (global priority order at dispatch).
  if (config_.acct_time_based && config_.work_stealing) {
    Vcpu* local = nullptr;
    for (Vcpu* v : p.runq) {
      if (Schedulable(*v)) {
        local = v;
        break;
      }
    }
    if (local == nullptr || local->priority == CreditPriority::kOver) {
      Vcpu* remote = nullptr;
      for (auto& q : pcpus_) {
        if (q.id == p.id) {
          continue;
        }
        for (Vcpu* w : q.runq) {
          if (!Schedulable(*w)) {
            continue;
          }
          if (w->priority < CreditPriority::kOver &&
              (remote == nullptr || w->priority < remote->priority)) {
            remote = w;
          }
          break;  // runq is priority-sorted; first schedulable is its best
        }
      }
      if (remote != nullptr) {
        RemoveFromRunq(*remote);
        VSCALE_TRACE_INSTANT(sim_.Now(), TraceCategory::kHypervisor, "steal",
                             remote->domain()->id(), remote->id(), p.id);
        RunOn(p, *remote);
        return;
      }
    }
  }
  Vcpu* next = PickFromRunq(p);
  if (next == nullptr && config_.work_stealing) {
    next = StealWork(p);
    if (next != nullptr) {
      VSCALE_TRACE_INSTANT(sim_.Now(), TraceCategory::kHypervisor, "steal",
                           next->domain()->id(), next->id(), p.id);
    }
  }
  if (next == nullptr) {
    if (on_schedule_hook) {
      on_schedule_hook(p.id, nullptr);
    }
    return;  // stays idle; idle_since was set when the pCPU was vacated
  }
  RunOn(p, *next);
}

void Machine::RunOn(Pcpu& p, Vcpu& v) {
  assert(p.current == nullptr);
  assert(v.state == VcpuState::kRunnable);
  const TimeNs now = sim_.Now();
  p.total_idle += now - p.idle_since;
  p.current = &v;
  v.state = VcpuState::kRunning;
  v.pcpu = p.id;
  v.total_wait += now - v.wait_since;
  if (now > v.wait_since) {
    v.domain()->wait_histogram.Add(now - v.wait_since);
  }
  // Window demand accounting: only the part of the wait inside the current window
  // (the pro-rated remainder was already reported by WindowWaited).
  v.domain()->waited_in_window += now - std::max(v.wait_since, window_start_);
  v.domain()->waited_in_acct_window += now - std::max(v.wait_since, acct_window_start_);
  v.run_since = now;
  v.last_settle = now;
  v.slice_end = now + config_.cost.hv_time_slice;
  ++context_switches_;
  // Opens the "running" slice on both the pCPU and the vCPU export tracks; closed by
  // the matching VSCALE_TRACE_END in DescheduleCurrent.
  VSCALE_TRACE_BEGIN(now, TraceCategory::kHypervisor, "run", v.domain()->id(),
                     v.id(), p.id);
  VSCALE_STALL_HOOK(OnDispatch(v.domain()->id(), v.id(), now));
  GuestOs* guest = v.domain()->guest();
  guest->OnScheduledIn(v.id(), now);
  DrainPendingPorts(v);
  if (v.state == VcpuState::kRunning) {
    RearmAdvance(v);
  }
  if (on_schedule_hook) {
    on_schedule_hook(p.id, &v);
  }
}

void Machine::DrainPendingPorts(Vcpu& v) {
  auto& pending = pending_ports_[static_cast<size_t>(GlobalIndex(v))];
  while (!pending.empty() && v.state == VcpuState::kRunning) {
    const EvtchnPort port = pending.front();
    pending.erase(pending.begin());
    v.domain()->guest()->DeliverEvent(v.id(), port);
  }
}

void Machine::SettleRunning(Vcpu& v) {
  assert(v.state == VcpuState::kRunning);
  const TimeNs now = sim_.Now();
  const TimeNs elapsed = now - v.last_settle;
  if (elapsed <= 0) {
    return;
  }
  v.last_settle = now;
  v.total_runtime += elapsed;
  v.credit_ns -= elapsed;
  Domain& d = *v.domain();
  d.consumed_in_window += elapsed;
  d.consumed_in_acct_window += elapsed;
  // Attribute the running time before the guest advances: the guest's Advance
  // reclassifies any kernel-spin portion of `elapsed` via OnSpinAdvance.
  VSCALE_STALL_HOOK(OnRunningAdvance(d.id(), v.id(), elapsed));
  d.guest()->Advance(v.id(), elapsed);
}

void Machine::RearmAdvance(Vcpu& v) {
  assert(v.state == VcpuState::kRunning);
  const TimeNs now = sim_.Now();
  const TimeNs dt = v.domain()->guest()->NextEventDelta(v.id());
  TimeNs deadline = v.slice_end;
  if (dt != kTimeNever && now + dt < deadline) {
    deadline = now + dt;
  }
  if (deadline < now) {
    deadline = now;
  }
  v.advance_event =
      sim_.Reschedule(v.advance_event, deadline, [this, &v] { OnAdvance(v); });
}

void Machine::OnAdvance(Vcpu& v) {
  v.advance_event = Simulator::kInvalidEvent;
  if (v.state != VcpuState::kRunning) {
    return;  // stale event that lost a cancellation race; harmless
  }
  SettleRunning(v);
  Pcpu& p = PcpuOf(v);
  if (sim_.Now() >= v.slice_end) {
    DescheduleCurrent(p, VcpuState::kRunnable);
    ScheduleDecision(p);
    return;
  }
  v.domain()->guest()->OnDeadline(v.id());
  if (v.state == VcpuState::kRunning && v.advance_event == Simulator::kInvalidEvent) {
    RearmAdvance(v);
  }
}

void Machine::DescheduleCurrent(Pcpu& p, VcpuState new_state, bool requeue_tail) {
  Vcpu& v = *p.current;
  const TimeNs now = sim_.Now();
  VSCALE_TRACE_END(now, TraceCategory::kHypervisor, "run", v.domain()->id(), v.id(),
                   p.id);
  sim_.Cancel(v.advance_event);
  v.advance_event = Simulator::kInvalidEvent;
  sim_.Cancel(p.ratelimit_check);
  p.ratelimit_check = Simulator::kInvalidEvent;
  p.current = nullptr;
  p.idle_since = now;
  v.domain()->guest()->OnDescheduled(v.id(), now);
  // BOOST ends when the vCPU loses the pCPU. Under time-based accounting
  // (docs/ADVERSARIAL.md) every deschedule refreshes priority from the
  // balance: stock credit1 only does this at tick/accounting edges, so a
  // short-burst runner (boost-abuser) that never spans a tick keeps UNDER
  // forever on a drained balance and queue-jumps every OVER victim.
  if (v.priority == CreditPriority::kBoost || config_.acct_time_based) {
    v.priority = v.credit_ns > 0 ? CreditPriority::kUnder : CreditPriority::kOver;
  }
  v.state = new_state;
  v.wait_since = now;
  VSCALE_STALL_HOOK(OnDesched(v.domain()->id(), v.id(), now,
                              new_state == VcpuState::kRunnable));
  if (new_state == VcpuState::kRunnable) {
    // Slice-end requeues stay local (no idler tickle): in Xen a descheduled vCPU
    // lingers on its pCPU's runq until an idler's load balance finds it.
    InsertRunnable(v, /*at_head_of_prio=*/!requeue_tail, /*tickle_idlers=*/false);
  }
}

void Machine::WakeVcpu(Vcpu& v, bool boost_eligible) {
  assert(v.state == VcpuState::kBlocked);
  const TimeNs now = sim_.Now();
  v.total_blocked += now - v.wait_since;
  ++v.wakeups;
  v.polling = false;
  v.poll_port = -1;
  if (boost_eligible && v.priority == CreditPriority::kUnder) {
    if (config_.boost_budget > 0 && v.boost_used >= config_.boost_budget) {
      // Budget exhausted (anti boost-abuse): the wake still queues, at UNDER —
      // it just cannot queue-jump until the next accounting period.
      ++boost_denied_;
      VS_COVER(Record(CoveragePoint::kBoostDenied));
    } else {
      v.priority = CreditPriority::kBoost;
      ++v.boost_used;
      ++boost_grants_;
    }
  }
  v.state = VcpuState::kRunnable;
  v.wait_since = now;
  VSCALE_STALL_HOOK(OnWake(v.domain()->id(), v.id(), now));
  VSCALE_TRACE_INSTANT_ARG(now, TraceCategory::kHypervisor, "vcpu_wake",
                           v.domain()->id(), v.id(), v.pcpu, "boost",
                           v.priority == CreditPriority::kBoost ? 1 : 0);
  InsertRunnable(v);
}

void Machine::MaybePreempt(Pcpu& p) {
  if (p.current == nullptr) {
    ScheduleDecision(p);
    return;
  }
  // Find the best schedulable priority waiting on this pCPU.
  CreditPriority best = CreditPriority::kOver;
  bool found = false;
  for (Vcpu* v : p.runq) {
    if (Schedulable(*v)) {
      best = v->priority;
      found = true;
      break;
    }
  }
  if (!found || best >= p.current->priority) {
    return;
  }
  const TimeNs now = sim_.Now();
  const TimeNs ran = now - p.current->run_since;
  // Under time-based accounting (docs/ADVERSARIAL.md): no ratelimit shelter
  // for a credit-exhausted vCPU against in-credit waiters. A boost-abuser's
  // sub-ratelimit bursts are otherwise unpreemptable — it voluntarily blocks
  // before the deferred check fires, so it microcycles at full cadence while
  // UNDER victims stack up behind each burst.
  const bool over_shelters =
      !(config_.acct_time_based &&
        p.current->priority == CreditPriority::kOver &&
        best < CreditPriority::kOver);
  if (ran < config_.cost.hv_ratelimit && over_shelters) {
    // Xen's sched_ratelimit: defer the preemption until the minimum run is served.
    if (p.ratelimit_check == Simulator::kInvalidEvent) {
      const TimeNs when = p.current->run_since + config_.cost.hv_ratelimit;
      p.ratelimit_check = sim_.ScheduleAt(when, [this, &p] {
        p.ratelimit_check = Simulator::kInvalidEvent;
        MaybePreempt(p);
      });
    }
    return;
  }
  SettleRunning(*p.current);
  ++p.current->preemptions;
  VSCALE_TRACE_INSTANT(now, TraceCategory::kHypervisor, "preempt",
                       p.current->domain()->id(), p.current->id(), p.id);
  DescheduleCurrent(p, VcpuState::kRunnable);
  ScheduleDecision(p);
}

// ---------------------------------------------------------------------------
// Periodic machinery
// ---------------------------------------------------------------------------

void Machine::HvTick() {
#if VSCALE_CHECKED
  CheckSchedulerInvariants();
#endif
  for (auto& p : pcpus_) {
    if (p.current == nullptr) {
      // Tickless idle: a halted pCPU does not poll for work — it waits for a wakeup
      // tickle. Work stealing happens only at natural scheduling points (a pCPU
      // vacating), which is what leaves preempted vCPUs parked for slice-scale
      // delays under load — the effect vScale exists to avoid.
      continue;
    }
    Vcpu& v = *p.current;
    SettleRunning(v);
    // Xen demotes BOOST at the first tick and refreshes priority from the balance.
    v.priority = v.credit_ns > 0 ? CreditPriority::kUnder : CreditPriority::kOver;
    // Anti-squatting rebalance (docs/ADVERSARIAL.md): stock work stealing only
    // runs when a pCPU vacates, so a credit-exhausted vCPU that never blocks
    // keeps its pCPU while better-priority work sits parked on a busy
    // neighbour's runq — the second half of the tick-evader's take. Under
    // time-based accounting, migrate the best parked UNDER/BOOST vCPU onto
    // this pCPU and requeue the OVER squatter at the tail of its band.
    if (config_.acct_time_based && v.priority == CreditPriority::kOver) {
      Vcpu* best = nullptr;
      for (auto& q : pcpus_) {
        if (q.id == p.id) {
          continue;  // a better local vCPU is MaybePreempt's job below
        }
        for (Vcpu* w : q.runq) {
          if (!Schedulable(*w)) {
            continue;
          }
          if (w->priority < CreditPriority::kOver &&
              (best == nullptr || w->priority < best->priority)) {
            best = w;
          }
          break;  // runq is priority-sorted; first schedulable is its best
        }
      }
      if (best != nullptr) {
        // Pull the parked vCPU over; the MaybePreempt inside InsertRunnable
        // then evicts the squatter under the normal ratelimit semantics.
        RemoveFromRunq(*best);
        best->pcpu = p.id;
        InsertRunnable(*best, /*at_head_of_prio=*/true, /*tickle_idlers=*/false);
        continue;
      }
    }
    // Cap enforcement at tick granularity.
    Domain& d = *v.domain();
    if (d.cap_pcpus() > 0.0) {
      const TimeNs budget = static_cast<TimeNs>(
          d.cap_pcpus() * static_cast<double>(config_.cost.hv_accounting_period));
      if (d.consumed_in_acct_window >= budget) {
        d.capped_out = true;
      }
    }
    if (d.capped_out) {
      DescheduleCurrent(p, VcpuState::kRunnable);
      ScheduleDecision(p);
      continue;
    }
    MaybePreempt(p);
  }
  // Stall-accounting sampler: piggybacks on this pre-existing periodic event
  // (never schedules its own), so enabling it cannot perturb the DES event
  // sequence. Every running vCPU was just settled to Now(), which is what
  // makes the bucket-exhaustiveness check exact here.
  VSCALE_STALL_HOOK(Sample(sim_.Now()));
}

void Machine::Accounting() {
  const TimeNs period = config_.cost.hv_accounting_period;
  const TimeNs capacity = static_cast<TimeNs>(config_.n_pcpus) * period;

  // A domain is acct-active if it consumed CPU this window or has demand right now.
  auto is_active = [&](const Domain& d) {
    if (d.consumed_in_acct_window > 0) {
      return true;
    }
    if (config_.acct_time_based) {
      // Hardened classification: only *accrued* time counts — CPU consumed, or
      // runnable-wait gathered over the window. A vCPU that flipped runnable an
      // instant before this pass contributes nothing, so a VM cannot buy active
      // status (a weight share) with a well-timed wakeup. Running vCPUs are
      // consuming by definition; starved-but-never-dispatched ones are covered
      // by their accrued in-progress wait.
      if (d.waited_in_acct_window > 0) {
        return true;
      }
      const TimeNs now = sim_.Now();
      for (int i = 0; i < d.n_vcpus(); ++i) {
        const Vcpu& v = d.vcpu(i);
        if (v.state == VcpuState::kRunning) {
          return true;
        }
        if (v.state == VcpuState::kRunnable &&
            now - std::max(v.wait_since, acct_window_start_) > 0) {
          return true;
        }
      }
      return false;
    }
    for (int i = 0; i < d.n_vcpus(); ++i) {
      const VcpuState s = d.vcpu(i).state;
      if (s == VcpuState::kRunning || s == VcpuState::kRunnable) {
        return true;
      }
    }
    return false;
  };
  auto effective_weight = [&](const Domain& d) -> int64_t {
    const int64_t w = d.weight();
    if (config_.per_domain_weight) {
      return w;
    }
    return w * std::max(1, d.n_active_vcpus());
  };

  int64_t total_weight = 0;
  for (const auto& d : domains_) {
    if (is_active(*d)) {
      total_weight += effective_weight(*d);
    }
  }

#if VSCALE_CHECKED
  // Credit conservation (Algorithm 1's input side): one accounting pass may hand out
  // at most the pool's capacity, however the weights shake out.
  TimeNs granted_total = 0;
#endif
  for (const auto& d : domains_) {
    const int n_active = std::max(1, d->n_active_vcpus());
    if (is_active(*d) && total_weight > 0) {
      const TimeNs dom_credit = static_cast<TimeNs>(
          static_cast<double>(capacity) * static_cast<double>(effective_weight(*d)) /
          static_cast<double>(total_weight));
#if VSCALE_CHECKED
      granted_total += dom_credit;
#endif
      const TimeNs share = dom_credit / n_active;
      for (int i = 0; i < d->n_vcpus(); ++i) {
        Vcpu& v = d->vcpu(i);
        if (v.frozen) {
          continue;  // removed from the active list (csched_acct with vScale patch)
        }
        v.credit_ns = std::clamp<TimeNs>(v.credit_ns + share, -period, period);
      }
    } else if (config_.acct_time_based) {
      // Hardened idle top-up: the balance ramps back at the weight-fair rate a
      // competing active domain would earn, instead of snapping to +period.
      // Binge/sleep cycling (the tick-evader) then recovers per sleep window
      // only what an honest always-on VM earns per window — no minting.
      const int64_t ew = effective_weight(*d);
      const TimeNs dom_credit = static_cast<TimeNs>(
          static_cast<double>(capacity) * static_cast<double>(ew) /
          static_cast<double>(total_weight + ew));
      const TimeNs share = dom_credit / n_active;
      for (int i = 0; i < d->n_vcpus(); ++i) {
        Vcpu& v = d->vcpu(i);
        if (!v.frozen && v.credit_ns < period) {
          v.credit_ns = std::min(period, v.credit_ns + share);
        }
      }
    } else {
      // Idle domains keep a warm positive balance so their wakeups are UNDER/BOOST.
      for (int i = 0; i < d->n_vcpus(); ++i) {
        Vcpu& v = d->vcpu(i);
        if (!v.frozen && v.credit_ns < period) {
          v.credit_ns = period;
        }
      }
    }
    d->capped_out = false;
    d->consumed_in_acct_window = 0;
    d->waited_in_acct_window = 0;
    for (int i = 0; i < d->n_vcpus(); ++i) {
      d->vcpu(i).boost_used = 0;
    }
  }
  acct_window_start_ = sim_.Now();
  VS_INVARIANT(granted_total <= capacity + static_cast<TimeNs>(domains_.size()),
               "accounting granted %lld ns of credit but pool capacity is only "
               "%lld ns per period",
               static_cast<long long>(granted_total),
               static_cast<long long>(capacity));

  if (VSCALE_TRACE_ACTIVE()) {
    // One credit-balance sample per domain per accounting pass: the entitlement side
    // of every scheduling decision, next to the run/preempt slices it explains.
    for (const auto& d : domains_) {
      TimeNs credit_sum = 0;
      for (int i = 0; i < d->n_vcpus(); ++i) {
        if (!d->vcpu(i).frozen) {
          credit_sum += d->vcpu(i).credit_ns;
        }
      }
      VSCALE_TRACE_COUNTER(sim_.Now(), TraceCategory::kHypervisor, "credit_ns",
                           d->id(), credit_sum);
    }
  }

  // Refresh queued vCPUs' priorities and resort queues.
  for (auto& p : pcpus_) {
    for (Vcpu* v : p.runq) {
      if (v->priority != CreditPriority::kBoost) {
        v->priority = v->credit_ns > 0 ? CreditPriority::kUnder : CreditPriority::kOver;
      }
    }
    std::stable_sort(p.runq.begin(), p.runq.end(),
                     [](const Vcpu* a, const Vcpu* b) { return a->priority < b->priority; });
  }
  for (auto& p : pcpus_) {
    MaybePreempt(p);
  }
}

// ---------------------------------------------------------------------------
// Invariant checking (VSCALE_CHECKED builds; see docs/CHECKING.md)
// ---------------------------------------------------------------------------

#if VSCALE_CHECKED
void Machine::CheckSchedulerInvariants() {
  const TimeNs period = config_.cost.hv_accounting_period;
  // Legal deficit: the clamp floor (-period), one further period burnt before the
  // next accounting pass, plus ticks of unsettled overshoot. A vCPU frozen (or
  // hotplug-halted) mid-deficit is skipped by the clamp, keeps that balance, and
  // after unfreeze can burn one more period before a pass clamps it again — so
  // the deepest legitimate balance is roughly two missed clamps deep.
  const TimeNs credit_floor = -(4 * period + 2 * config_.cost.hv_tick_period);
  for (const auto& p : pcpus_) {
    // A stolen pCPU belongs to another pool for the duration of the burst: it
    // must neither run nor park anything (SetStolenPcpus migrated its queue).
    VS_INVARIANT(!p.stolen || (p.current == nullptr && p.runq.empty()),
                 "stolen pcpu %d still holds work (current=%d, runq=%zu)", p.id,
                 p.current != nullptr ? 1 : 0, p.runq.size());
    if (p.current != nullptr) {
      VS_INVARIANT(p.current->state == VcpuState::kRunning,
                   "pcpu %d runs dom %d vcpu %d which is in state %d, not RUNNING",
                   p.id, p.current->domain()->id(), p.current->id(),
                   static_cast<int>(p.current->state));
      VS_INVARIANT(p.current->pcpu == p.id,
                   "pcpu %d runs dom %d vcpu %d whose pcpu field says %d", p.id,
                   p.current->domain()->id(), p.current->id(), p.current->pcpu);
    }
    for (size_t i = 0; i < p.runq.size(); ++i) {
      const Vcpu* v = p.runq[i];
      VS_INVARIANT(v->state == VcpuState::kRunnable,
                   "dom %d vcpu %d queued on pcpu %d in state %d, not RUNNABLE",
                   v->domain()->id(), v->id(), p.id, static_cast<int>(v->state));
      VS_INVARIANT(v->pcpu == p.id,
                   "dom %d vcpu %d queued on pcpu %d but its pcpu field says %d",
                   v->domain()->id(), v->id(), p.id, v->pcpu);
      VS_INVARIANT(i == 0 || p.runq[i - 1]->priority <= v->priority,
                   "runq of pcpu %d is not priority-sorted at position %zu", p.id, i);
    }
  }
  for (const auto& d : domains_) {
    for (int i = 0; i < d->n_vcpus(); ++i) {
      const Vcpu& v = d->vcpu(i);
      if (v.state == VcpuState::kRunning) {
        // At most one RUNNING vCPU per pCPU: every RUNNING vCPU must be the single
        // `current` of the pCPU it claims — two RUNNING vCPUs cannot share one.
        VS_INVARIANT(v.pcpu >= 0 && v.pcpu < n_pcpus(),
                     "dom %d vcpu %d RUNNING on out-of-range pcpu %d", d->id(), i,
                     v.pcpu);
        VS_INVARIANT(pcpus_[static_cast<size_t>(v.pcpu)].current == &v,
                     "dom %d vcpu %d claims to RUN on pcpu %d but is not its current",
                     d->id(), i, v.pcpu);
      }
      // BOOST legality: BOOST exists to accelerate a wakeup toward a pCPU; a vCPU
      // that went back to sleep must have been demoted on the way out.
      VS_INVARIANT(v.state != VcpuState::kBlocked ||
                       v.priority != CreditPriority::kBoost,
                   "dom %d vcpu %d is BLOCKED yet still holds BOOST priority",
                   d->id(), i);
      VS_INVARIANT(!v.polling || v.state == VcpuState::kBlocked,
                   "dom %d vcpu %d polls port %d but is in state %d, not BLOCKED",
                   d->id(), i, v.poll_port, static_cast<int>(v.state));
      VS_INVARIANT(v.credit_ns <= period && v.credit_ns >= credit_floor,
                   "dom %d vcpu %d credit balance %lld ns outside [%lld, %lld] — "
                   "credit leak or external corruption",
                   d->id(), i, static_cast<long long>(v.credit_ns),
                   static_cast<long long>(credit_floor),
                   static_cast<long long>(period));
    }
  }
}
#endif  // VSCALE_CHECKED

// ---------------------------------------------------------------------------
// Hypercall surface
// ---------------------------------------------------------------------------

void Machine::BlockVcpu(DomainId dom, VcpuId vcpu) {
  Vcpu& v = GetVcpu(dom, vcpu);
  if (v.state != VcpuState::kRunning) {
    return;
  }
  Pcpu& p = PcpuOf(v);
  SettleRunning(v);
  DescheduleCurrent(p, VcpuState::kBlocked);
  ScheduleDecision(p);
}

void Machine::NotifyEvent(DomainId dom, VcpuId target, EvtchnPort port, bool urgent) {
  Vcpu& v = GetVcpu(dom, target);
  switch (v.state) {
    case VcpuState::kBlocked: {
      pending_ports_[static_cast<size_t>(GlobalIndex(v))].push_back(port);
      WakeVcpu(v, /*boost_eligible=*/true);
      VSCALE_STALL_HOOK(OnEventPosted(dom, target, sim_.Now()));
      break;
    }
    case VcpuState::kRunnable: {
      pending_ports_[static_cast<size_t>(GlobalIndex(v))].push_back(port);
      // The delayed-virtual-interrupt pathology of paper Fig. 1(b)/(c): the event
      // sits pending until the preempted vCPU is scheduled again.
      VSCALE_TRACE_INSTANT_ARG(sim_.Now(), TraceCategory::kHypervisor,
                               "evtchn_delayed", dom, target, v.pcpu, "port", port);
      if (urgent) {
        // vScale: prioritize the reconfigured vCPU so freeze/unfreeze IPIs land fast.
        RemoveFromRunq(v);
        if (v.priority != CreditPriority::kBoost) {
          v.priority = CreditPriority::kBoost;
        }
        InsertRunnable(v, /*at_head_of_prio=*/true);
      }
      VSCALE_STALL_HOOK(OnEventPosted(dom, target, sim_.Now()));
      break;
    }
    case VcpuState::kRunning: {
      SettleRunning(v);
      v.domain()->guest()->DeliverEvent(v.id(), port);
      if (v.state == VcpuState::kRunning) {
        RearmAdvance(v);
      }
      break;
    }
  }
}

void Machine::YieldVcpu(DomainId dom, VcpuId vcpu) {
  Vcpu& v = GetVcpu(dom, vcpu);
  if (v.state != VcpuState::kRunning) {
    return;
  }
  Pcpu& p = PcpuOf(v);
  SettleRunning(v);
  DescheduleCurrent(p, VcpuState::kRunnable);
  ScheduleDecision(p);
}

void Machine::PollVcpu(DomainId dom, VcpuId vcpu, EvtchnPort port) {
  Vcpu& v = GetVcpu(dom, vcpu);
  if (v.state != VcpuState::kRunning) {
    return;
  }
  Pcpu& p = PcpuOf(v);
  SettleRunning(v);
  // A poll-block is the pv-spinlock halt path: lock-related, not idle.
  VSCALE_STALL_HOOK(SetBlockReason(dom, vcpu, StallBlockReason::kFutex));
  DescheduleCurrent(p, VcpuState::kBlocked);
  v.polling = true;
  v.poll_port = port;
  ScheduleDecision(p);
}

void Machine::NotifyFreeze(DomainId dom, VcpuId vcpu, bool frozen) {
  Vcpu& v = GetVcpu(dom, vcpu);
  v.frozen = frozen;
  VSCALE_STALL_HOOK(OnFrozenChanged(dom, vcpu, sim_.Now(), frozen));
  VSCALE_TRACE_INSTANT_ARG(sim_.Now(), TraceCategory::kHypervisor, "hv_freeze", dom,
                           vcpu, v.pcpu, "frozen", frozen ? 1 : 0);
  if (!frozen) {
    // Re-entering the active list: seed the vCPU with the domain's average active
    // balance so it does not sit OVER behind everyone until the next accounting pass.
    Domain& d = *domains_[static_cast<size_t>(dom)];
    TimeNs sum = 0;
    int n = 0;
    for (int i = 0; i < d.n_vcpus(); ++i) {
      const Vcpu& peer = d.vcpu(i);
      if (!peer.frozen && i != vcpu) {
        sum += peer.credit_ns;
        ++n;
      }
    }
    if (n > 0) {
      v.credit_ns = std::max(v.credit_ns, sum / n);
    }
    v.priority = v.credit_ns > 0 ? CreditPriority::kUnder : CreditPriority::kOver;
  }
}

int Machine::ReadExtendability(DomainId dom) {
  return domains_[static_cast<size_t>(dom)]->extendability_nvcpus;
}

ChannelPayload Machine::ReadChannelPayload(DomainId dom) {
  const Domain& d = *domains_[static_cast<size_t>(dom)];
  ChannelPayload p;
  p.nvcpus = d.extendability_nvcpus;
  p.ext_ns = d.extendability_ns;
  p.seq = d.extendability_seq;
  p.stamp = d.extendability_stamp;
  return p;
}

void Machine::VcpuStateChanged(DomainId dom, VcpuId vcpu) {
  Vcpu& v = GetVcpu(dom, vcpu);
  if (v.state == VcpuState::kRunning) {
    SettleRunning(v);
    RearmAdvance(v);
  }
}

// ---------------------------------------------------------------------------
// vScale ticker interface & statistics
// ---------------------------------------------------------------------------

TimeNs Machine::WindowConsumption(DomainId dom) const {
  return domains_[static_cast<size_t>(dom)]->consumed_in_window;
}

TimeNs Machine::WindowWaited(DomainId dom) const {
  const Domain& d = *domains_[static_cast<size_t>(dom)];
  TimeNs waited = d.waited_in_window;
  // Include in-progress waits, pro-rated to this window: queueing stints routinely
  // outlast the 10 ms recalculation window, and missing them would misclassify
  // throttled VMs as releasers.
  const TimeNs now = sim_.Now();
  for (int i = 0; i < d.n_vcpus(); ++i) {
    const Vcpu& v = d.vcpu(i);
    if (v.state == VcpuState::kRunnable) {
      waited += now - std::max(v.wait_since, window_start_);
    }
  }
  return waited;
}

void Machine::ResetConsumptionWindow() {
  for (auto& d : domains_) {
    d->consumed_in_window = 0;
    d->waited_in_window = 0;
  }
  window_start_ = sim_.Now();
}

void Machine::WriteExtendability(DomainId dom, int n_vcpus, TimeNs ext_ns) {
  Domain& d = *domains_[static_cast<size_t>(dom)];
  d.extendability_nvcpus = n_vcpus;
  d.extendability_ns = ext_ns;
  // Seq + valid-stamp: the guest-side staleness/torn-read protocol. An honest
  // writer always advances seq and restamps; a garbling fault perturbs the value
  // without restamping, which is exactly what the reader's check catches.
  ++d.extendability_seq;
  d.extendability_stamp = ChannelStamp(d.extendability_seq, n_vcpus);
}

void Machine::SetStolenPcpus(int n) {
  n = std::clamp(n, 0, n_pcpus() - 1);
  const TimeNs now = sim_.Now();
  // Pass 1: flip the stolen marks and vacate newly stolen pCPUs. Displaced and
  // parked vCPUs are collected first and re-placed only after every mark is final,
  // so none lands on a pCPU about to be stolen in the same transition.
  std::vector<Vcpu*> displaced;
  std::vector<Pcpu*> freed;
  for (auto& p : pcpus_) {
    const bool steal = p.id >= n_pcpus() - n;
    if (steal == p.stolen) {
      continue;
    }
    if (steal) {
      p.stolen = true;
      p.stolen_since = now;
      if (p.current != nullptr) {
        SettleRunning(*p.current);
        ++p.current->preemptions;
        Vcpu& evicted = *p.current;
        VSCALE_TRACE_INSTANT(now, TraceCategory::kHypervisor, "steal_evict",
                             evicted.domain()->id(), evicted.id(), p.id);
        // InsertRunnable sees p already marked stolen, so the requeue re-places
        // the evicted vCPU on a surviving pCPU right away.
        DescheduleCurrent(p, VcpuState::kRunnable);
        VSCALE_STALL_HOOK(
            OnStealDisplaced(evicted.domain()->id(), evicted.id(), now));
      } else {
        // Close the idle window: the burst counts as stolen time, not idle time.
        p.total_idle += now - p.idle_since;
      }
      p.idle_since = now;
      for (Vcpu* v : p.runq) {
        displaced.push_back(v);
      }
      p.runq.clear();
    } else {
      p.stolen = false;
      stolen_ns_ += now - p.stolen_since;
      p.idle_since = now;
      freed.push_back(&p);
    }
  }
  // Pass 2: the hypervisor migrates the stolen pCPUs' queues to surviving ones.
  for (Vcpu* v : displaced) {
    v->pcpu = -1;
    VSCALE_STALL_HOOK(OnStealDisplaced(v->domain()->id(), v->id(), now));
    InsertRunnable(*v);
  }
  for (Pcpu* p : freed) {
    ScheduleDecision(*p);
  }
}

int Machine::stolen_pcpus() const {
  int n = 0;
  for (const auto& p : pcpus_) {
    if (p.stolen) {
      ++n;
    }
  }
  return n;
}

TimeNs Machine::TotalIdleTime() const {
  TimeNs total = 0;
  for (const auto& p : pcpus_) {
    total += p.total_idle;
    if (p.current == nullptr) {
      total += sim_.Now() - p.idle_since;
    }
  }
  return total;
}

double Machine::PoolUtilization() const {
  const TimeNs elapsed = sim_.Now();
  if (elapsed <= 0) {
    return 0.0;
  }
  const double capacity = static_cast<double>(elapsed) * config_.n_pcpus;
  return 1.0 - static_cast<double>(TotalIdleTime()) / capacity;
}

}  // namespace vscale
