// Machine: the simulated physical host — pCPU pool plus a Xen credit1-style scheduler
// and the hypercall surface (HvServices) guests program against.
//
// Scheduling model (mirrors Xen's sched_credit.c):
//  * per-pCPU run queues ordered BOOST > UNDER > OVER, FIFO within a priority;
//  * 30 ms scheduling slice, 10 ms ticks that refresh priorities and check preemption;
//  * 30 ms accounting that distributes credits to domains proportionally to their
//    per-domain weight, split across *active* (non-frozen) vCPUs — the vScale patch;
//  * BOOST for vCPUs woken from block by an event (I/O or virtual IPI);
//  * work-conserving idle stealing across the pool;
//  * a wakeup ratelimit: a vCPU that just started running is not preempted for
//    hv_ratelimit ns, matching Xen's sched_ratelimit_us.
//
// Co-simulation: each RUNNING vCPU has exactly one pending advance event at
// min(guest-internal boundary, slice end). All state changes settle elapsed time first
// (SettleRunning), then recompute the deadline. See guest_os.h for the contract.

#ifndef VSCALE_SRC_HYPERVISOR_MACHINE_H_
#define VSCALE_SRC_HYPERVISOR_MACHINE_H_

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "src/base/cost_model.h"
#include "src/base/rng.h"
#include "src/base/small_vector.h"
#include "src/base/time.h"
#include "src/hypervisor/domain.h"
#include "src/hypervisor/guest_os.h"
#include "src/hypervisor/hv_services.h"
#include "src/hypervisor/types.h"
#include "src/sim/event_queue.h"

namespace vscale {

struct MachineConfig {
  int n_pcpus = 4;
  CostModel cost;
  uint64_t seed = 1;
  bool work_stealing = true;
  // Wake placement when no pCPU idles: false = stay on v->processor (sticky);
  // true = pick the shallowest run queue (csched_cpu_pick-style spreading). Spreading
  // lets bursty VMs' BOOST wakeups displace busy vCPUs anywhere — the source of the
  // scheduling delays consolidated SMP guests suffer.
  bool wake_spreads_load = true;
  // When false (stock Xen 4.5), weight is per-vCPU: a domain's entitlement scales with
  // its active vCPU count, which penalizes freezing (the unfairness vScale's patch
  // fixes, paper section 4.2). When true (vScale), weight is per-domain.
  bool per_domain_weight = true;

  // --- adversarial hardening (docs/ADVERSARIAL.md); both default OFF so stock
  // behaviour — and every digest-gated scenario — stays bit-identical ---
  // Classify accounting activity from consumed-time samples only: a domain is
  // active iff it accrued CPU or runnable-wait time this accounting window (no
  // instantaneous runnable-state scan), and an idle domain's credit refills at
  // its weight-fair rate instead of snapping to +period. Closes the
  // tick-evader's free top-up.
  bool acct_time_based = false;
  // Max BOOST grants per vCPU per accounting period; 0 = unlimited (stock).
  // Over-budget wakeups still queue, at UNDER instead of BOOST — starving the
  // boost-abuser's preemption storm.
  int boost_budget = 0;
};

class Machine : public HvServices {
 public:
  explicit Machine(MachineConfig config);
  ~Machine() override;

  Machine(const Machine&) = delete;
  Machine& operator=(const Machine&) = delete;

  Simulator& sim() { return sim_; }
  const Simulator& sim() const { return sim_; }
  const MachineConfig& config() const { return config_; }
  const CostModel& cost() const { return config_.cost; }

  // Creates a domain; the caller attaches a GuestOs before starting vCPUs.
  Domain& CreateDomain(const std::string& name, int weight, int n_vcpus);
  int n_domains() const { return static_cast<int>(domains_.size()); }
  Domain& domain(DomainId id) { return *domains_[static_cast<size_t>(id)]; }
  const std::vector<std::unique_ptr<Domain>>& domains() const { return domains_; }

  int n_pcpus() const { return static_cast<int>(pcpus_.size()); }

  // Kicks a blocked vCPU into the run queues (used at boot / by tests).
  void StartVcpu(DomainId dom, VcpuId vcpu);

  // --- HvServices (guest-facing hypercall surface) ---
  TimeNs Now() const override { return sim_.Now(); }
  Rng& rng() override { return rng_; }
  void BlockVcpu(DomainId dom, VcpuId vcpu) override;
  void NotifyEvent(DomainId dom, VcpuId target, EvtchnPort port,
                   bool urgent = false) override;
  void YieldVcpu(DomainId dom, VcpuId vcpu) override;
  void PollVcpu(DomainId dom, VcpuId vcpu, EvtchnPort port) override;
  void NotifyFreeze(DomainId dom, VcpuId vcpu, bool frozen) override;
  int ReadExtendability(DomainId dom) override;
  ChannelPayload ReadChannelPayload(DomainId dom) override;
  void VcpuStateChanged(DomainId dom, VcpuId vcpu) override;

  // --- vScale ticker interface (hypervisor-side extension, written by vscale/) ---
  // Per-domain CPU consumed since the last ResetConsumptionWindow().
  TimeNs WindowConsumption(DomainId dom) const;
  // Per-domain runnable-wait (unmet demand) in the same window.
  TimeNs WindowWaited(DomainId dom) const;
  void ResetConsumptionWindow();
  void WriteExtendability(DomainId dom, int n_vcpus, TimeNs ext_ns);

  // --- fault plane: pCPU steal bursts (driven by a FaultInjector transition) ---
  // Marks the highest-id `n` pCPUs as stolen by another pool: their current vCPUs
  // are descheduled and their queues migrate; the scheduler skips stolen pCPUs
  // until the burst ends (n = 0). Clamped to n_pcpus - 1 so the pool never fully
  // vanishes. Deterministic — a plain state change on the virtual clock.
  void SetStolenPcpus(int n);
  int stolen_pcpus() const;
  // Aggregate pCPU-time lost to completed steal bursts.
  TimeNs total_stolen_ns() const { return stolen_ns_; }

  // --- statistics ---
  TimeNs PcpuIdleTime(PcpuId p) const { return pcpus_[static_cast<size_t>(p)].total_idle; }
  TimeNs TotalIdleTime() const;
  int64_t context_switches() const { return context_switches_; }
  // Fraction of pool capacity consumed so far (all domains).
  double PoolUtilization() const;
  // BOOST wake telemetry (never digest-absorbed): grants counts every BOOST
  // awarded by WakeVcpu; denials only occur with boost_budget > 0.
  int64_t boost_grants() const { return boost_grants_; }
  int64_t boost_denied() const { return boost_denied_; }

  // Invoked after every scheduling decision; for tracing (Fig. 8) and tests.
  std::function<void(PcpuId, Vcpu*)> on_schedule_hook;

 private:
  // The run queue lives inline in the Pcpu (SmallVector): scanning a queue is
  // the same cache lines as the Pcpu that owns it, and queues only spill to the
  // heap past 8 waiters — deeper than any steady state the testbed produces.
  using RunQueue = SmallVector<Vcpu*, 8>;

  struct Pcpu {
    Vcpu* current = nullptr;  // nullptr = idle
    PcpuId id = -1;
    bool stolen = false;      // temporarily owned by another pool (fault plane)
    RunQueue runq;            // priority buckets flattened: sorted stably by priority
    TimeNs idle_since = 0;
    TimeNs total_idle = 0;
    Simulator::EventId ratelimit_check = Simulator::kInvalidEvent;
    TimeNs stolen_since = 0;
  };

  Vcpu& GetVcpu(DomainId dom, VcpuId vcpu) {
    return domains_[static_cast<size_t>(dom)]->vcpu(vcpu);
  }
  Pcpu& PcpuOf(const Vcpu& v) { return pcpus_[static_cast<size_t>(v.pcpu)]; }

  // Run-queue maintenance. `tickle_idlers` distinguishes wakeups (Xen tickles idle
  // pCPUs) from slice-end requeues (local queue only; idlers pick the vCPU up at
  // their next tick-driven steal) — the latter is a real source of scheduling delay.
  void InsertRunnable(Vcpu& v, bool at_head_of_prio = false, bool tickle_idlers = true);
  void RemoveFromRunq(Vcpu& v);
  Pcpu* FindIdlePcpu();

  // Makes a scheduling decision on an idle-or-vacated pCPU.
  void ScheduleDecision(Pcpu& p);
  Vcpu* PickFromRunq(Pcpu& p);
  Vcpu* StealWork(Pcpu& thief);
  bool Schedulable(const Vcpu& v) const;

  // Puts v on p (v must be runnable and dequeued); installs slice + advance event.
  void RunOn(Pcpu& p, Vcpu& v);

  // Settles elapsed runtime of a RUNNING vCPU into credits, domain windows and the
  // guest. Idempotent at a given Now().
  void SettleRunning(Vcpu& v);

  // Recomputes and installs the advance event for a settled, still-running vCPU.
  void RearmAdvance(Vcpu& v);

  void OnAdvance(Vcpu& v);

  // Takes the pCPU away from its current vCPU (already settled) and requeues/blocks it.
  void DescheduleCurrent(Pcpu& p, VcpuState new_state, bool requeue_tail = true);

  // Wakes a blocked vCPU (event arrival): BOOST eligibility + insert + tickle.
  void WakeVcpu(Vcpu& v, bool boost_eligible);

  // If v (runnable, queued on p) outranks what p runs, preempt subject to ratelimit.
  void MaybePreempt(Pcpu& p);

  void HvTick();       // every cost.hv_tick_period: priority refresh + preempt checks
  void Accounting();   // every cost.hv_accounting_period: credit distribution

  // Whole-machine scheduler invariant sweep (VSCALE_CHECKED builds only; defined and
  // called under the gate). Read-only: per docs/CHECKING.md it polices
  //  * pCPU/vCPU dispatch consistency (at most one RUNNING vCPU per pCPU, and every
  //    RUNNING vCPU is the `current` of the pCPU it points at);
  //  * run-queue sanity (entries RUNNABLE, on the right queue, priority-sorted);
  //  * BOOST/UNDER/OVER legality and credit-balance bounds (paper Algorithm 1's
  //    credit flow, clamped to ±accounting period by csched_acct).
  void CheckSchedulerInvariants();

  void DrainPendingPorts(Vcpu& v);

  MachineConfig config_;
  Simulator sim_;
  Rng rng_;
  std::vector<std::unique_ptr<Domain>> domains_;
  std::vector<Pcpu> pcpus_;
  // [global vcpu index] -> ports awaiting delivery. A bucket rarely holds more
  // than one or two ports, so four inline slots keep delivery allocation-free.
  std::vector<SmallVector<EvtchnPort, 4>> pending_ports_;
  std::unique_ptr<PeriodicTask> tick_task_;
  std::unique_ptr<PeriodicTask> acct_task_;
  int64_t context_switches_ = 0;
  TimeNs window_start_ = 0;  // start of the current vScale consumption window
  TimeNs acct_window_start_ = 0;  // start of the current accounting window
  TimeNs stolen_ns_ = 0;     // pCPU-time lost to completed steal bursts
  int64_t boost_grants_ = 0;
  int64_t boost_denied_ = 0;

  // Global vCPU index assignment for pending_ports_.
  int GlobalIndex(const Vcpu& v) const;
  std::vector<int> domain_vcpu_base_;
};

}  // namespace vscale

#endif  // VSCALE_SRC_HYPERVISOR_MACHINE_H_
