// Centralized dom0/libxl monitoring model — the baseline vScale's per-VM channel is
// compared against (paper Figure 4, section 5.1.1).
//
// Reading one VM's CPU consumption through libxl costs a XenStore transaction plus
// hypercalls executed inside dom0 (~480 us when dom0 is idle). dom0 is also the I/O
// proxy for every domU, so background disk/network traffic queues ahead of toolstack
// work and inflates the read latency; reading N VMs is serialized and therefore scales
// linearly. VCPU-Bal uses exactly this path.

#ifndef VSCALE_SRC_HYPERVISOR_TOOLSTACK_H_
#define VSCALE_SRC_HYPERVISOR_TOOLSTACK_H_

#include "src/base/cost_model.h"
#include "src/base/rng.h"
#include "src/base/stats.h"
#include "src/base/time.h"

namespace vscale {

enum class Dom0Load {
  kIdle,     // no background I/O in dom0
  kDiskIo,   // one VM doing dd-style disk I/O through the block backend
  kNetIo,    // one VM doing netperf-style streaming through the net backend
};

class Dom0Toolstack {
 public:
  Dom0Toolstack(const CostModel& cost, Rng rng) : cost_(cost), rng_(rng) {}

  // Latency of one libxl pass that reads the CPU consumption of all `n_vms` VMs under
  // the given dom0 background load. Samples queueing noise per VM read.
  TimeNs SampleMonitorAllVms(int n_vms, Dom0Load load);

  // Convenience: distribution of `iterations` passes.
  RunningStat MeasureMonitorCost(int n_vms, Dom0Load load, int iterations);

 private:
  TimeNs SamplePerVmRead(Dom0Load load);

  const CostModel& cost_;
  Rng rng_;
};

}  // namespace vscale

#endif  // VSCALE_SRC_HYPERVISOR_TOOLSTACK_H_
