#include "src/hypervisor/domain.h"

namespace vscale {

Domain::Domain(DomainId id, std::string name, int weight, int n_vcpus)
    : id_(id), name_(std::move(name)), weight_(weight) {
  // Reserve exactly: the vCPU array never grows afterwards, which is what makes
  // the Vcpu* held by run queues and advance-event closures stable.
  vcpus_.reserve(static_cast<size_t>(n_vcpus));
  for (int i = 0; i < n_vcpus; ++i) {
    vcpus_.emplace_back(this, i);
  }
}

int Domain::n_active_vcpus() const {
  int n = 0;
  for (const auto& v : vcpus_) {
    if (!v.frozen) {
      ++n;
    }
  }
  return n;
}

uint64_t Domain::hv_freeze_mask() const {
  uint64_t mask = 0;
  for (size_t i = 0; i < vcpus_.size(); ++i) {
    if (vcpus_[i].frozen) {
      mask |= 1ULL << i;
    }
  }
  return mask;
}

TimeNs Domain::TotalRuntime() const {
  TimeNs total = 0;
  for (const auto& v : vcpus_) {
    total += v.total_runtime;
  }
  return total;
}

TimeNs Domain::TotalWait() const {
  TimeNs total = 0;
  for (const auto& v : vcpus_) {
    total += v.total_wait;
  }
  return total;
}

}  // namespace vscale
