# Empty compiler generated dependencies file for vscale_sim.
# This may be replaced when dependencies are built.
