file(REMOVE_RECURSE
  "libvscale_sim.a"
)
