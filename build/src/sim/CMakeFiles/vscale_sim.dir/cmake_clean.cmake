file(REMOVE_RECURSE
  "CMakeFiles/vscale_sim.dir/event_queue.cc.o"
  "CMakeFiles/vscale_sim.dir/event_queue.cc.o.d"
  "libvscale_sim.a"
  "libvscale_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vscale_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
