file(REMOVE_RECURSE
  "CMakeFiles/vscale_guest.dir/kernel.cc.o"
  "CMakeFiles/vscale_guest.dir/kernel.cc.o.d"
  "CMakeFiles/vscale_guest.dir/kernel_sched.cc.o"
  "CMakeFiles/vscale_guest.dir/kernel_sched.cc.o.d"
  "CMakeFiles/vscale_guest.dir/kernel_sync.cc.o"
  "CMakeFiles/vscale_guest.dir/kernel_sync.cc.o.d"
  "libvscale_guest.a"
  "libvscale_guest.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vscale_guest.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
