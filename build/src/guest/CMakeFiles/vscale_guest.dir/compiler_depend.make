# Empty compiler generated dependencies file for vscale_guest.
# This may be replaced when dependencies are built.
