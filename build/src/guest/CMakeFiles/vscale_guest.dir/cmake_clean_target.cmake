file(REMOVE_RECURSE
  "libvscale_guest.a"
)
