
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/guest/kernel.cc" "src/guest/CMakeFiles/vscale_guest.dir/kernel.cc.o" "gcc" "src/guest/CMakeFiles/vscale_guest.dir/kernel.cc.o.d"
  "/root/repo/src/guest/kernel_sched.cc" "src/guest/CMakeFiles/vscale_guest.dir/kernel_sched.cc.o" "gcc" "src/guest/CMakeFiles/vscale_guest.dir/kernel_sched.cc.o.d"
  "/root/repo/src/guest/kernel_sync.cc" "src/guest/CMakeFiles/vscale_guest.dir/kernel_sync.cc.o" "gcc" "src/guest/CMakeFiles/vscale_guest.dir/kernel_sync.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/hypervisor/CMakeFiles/vscale_hypervisor.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/vscale_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/base/CMakeFiles/vscale_base.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
