file(REMOVE_RECURSE
  "libvscale_metrics.a"
)
