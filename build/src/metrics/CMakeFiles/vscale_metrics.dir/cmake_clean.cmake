file(REMOVE_RECURSE
  "CMakeFiles/vscale_metrics.dir/run_metrics.cc.o"
  "CMakeFiles/vscale_metrics.dir/run_metrics.cc.o.d"
  "libvscale_metrics.a"
  "libvscale_metrics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vscale_metrics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
