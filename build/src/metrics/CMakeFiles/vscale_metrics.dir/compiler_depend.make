# Empty compiler generated dependencies file for vscale_metrics.
# This may be replaced when dependencies are built.
