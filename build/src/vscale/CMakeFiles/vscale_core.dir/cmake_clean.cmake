file(REMOVE_RECURSE
  "CMakeFiles/vscale_core.dir/balancer.cc.o"
  "CMakeFiles/vscale_core.dir/balancer.cc.o.d"
  "CMakeFiles/vscale_core.dir/daemon.cc.o"
  "CMakeFiles/vscale_core.dir/daemon.cc.o.d"
  "CMakeFiles/vscale_core.dir/extendability.cc.o"
  "CMakeFiles/vscale_core.dir/extendability.cc.o.d"
  "CMakeFiles/vscale_core.dir/ticker.cc.o"
  "CMakeFiles/vscale_core.dir/ticker.cc.o.d"
  "CMakeFiles/vscale_core.dir/vcpubal.cc.o"
  "CMakeFiles/vscale_core.dir/vcpubal.cc.o.d"
  "libvscale_core.a"
  "libvscale_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vscale_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
