
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/vscale/balancer.cc" "src/vscale/CMakeFiles/vscale_core.dir/balancer.cc.o" "gcc" "src/vscale/CMakeFiles/vscale_core.dir/balancer.cc.o.d"
  "/root/repo/src/vscale/daemon.cc" "src/vscale/CMakeFiles/vscale_core.dir/daemon.cc.o" "gcc" "src/vscale/CMakeFiles/vscale_core.dir/daemon.cc.o.d"
  "/root/repo/src/vscale/extendability.cc" "src/vscale/CMakeFiles/vscale_core.dir/extendability.cc.o" "gcc" "src/vscale/CMakeFiles/vscale_core.dir/extendability.cc.o.d"
  "/root/repo/src/vscale/ticker.cc" "src/vscale/CMakeFiles/vscale_core.dir/ticker.cc.o" "gcc" "src/vscale/CMakeFiles/vscale_core.dir/ticker.cc.o.d"
  "/root/repo/src/vscale/vcpubal.cc" "src/vscale/CMakeFiles/vscale_core.dir/vcpubal.cc.o" "gcc" "src/vscale/CMakeFiles/vscale_core.dir/vcpubal.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/guest/CMakeFiles/vscale_guest.dir/DependInfo.cmake"
  "/root/repo/build/src/hypervisor/CMakeFiles/vscale_hypervisor.dir/DependInfo.cmake"
  "/root/repo/build/src/base/CMakeFiles/vscale_base.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/vscale_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
