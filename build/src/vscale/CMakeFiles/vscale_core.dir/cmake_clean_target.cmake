file(REMOVE_RECURSE
  "libvscale_core.a"
)
