# Empty compiler generated dependencies file for vscale_core.
# This may be replaced when dependencies are built.
