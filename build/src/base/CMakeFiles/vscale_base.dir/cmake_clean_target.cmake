file(REMOVE_RECURSE
  "libvscale_base.a"
)
