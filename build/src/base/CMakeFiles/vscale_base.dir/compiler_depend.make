# Empty compiler generated dependencies file for vscale_base.
# This may be replaced when dependencies are built.
