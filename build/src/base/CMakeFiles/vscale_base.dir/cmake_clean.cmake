file(REMOVE_RECURSE
  "CMakeFiles/vscale_base.dir/histogram.cc.o"
  "CMakeFiles/vscale_base.dir/histogram.cc.o.d"
  "CMakeFiles/vscale_base.dir/log.cc.o"
  "CMakeFiles/vscale_base.dir/log.cc.o.d"
  "CMakeFiles/vscale_base.dir/rng.cc.o"
  "CMakeFiles/vscale_base.dir/rng.cc.o.d"
  "CMakeFiles/vscale_base.dir/stats.cc.o"
  "CMakeFiles/vscale_base.dir/stats.cc.o.d"
  "CMakeFiles/vscale_base.dir/table.cc.o"
  "CMakeFiles/vscale_base.dir/table.cc.o.d"
  "CMakeFiles/vscale_base.dir/time.cc.o"
  "CMakeFiles/vscale_base.dir/time.cc.o.d"
  "libvscale_base.a"
  "libvscale_base.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vscale_base.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
