file(REMOVE_RECURSE
  "CMakeFiles/vscale_hypervisor.dir/domain.cc.o"
  "CMakeFiles/vscale_hypervisor.dir/domain.cc.o.d"
  "CMakeFiles/vscale_hypervisor.dir/hotplug_model.cc.o"
  "CMakeFiles/vscale_hypervisor.dir/hotplug_model.cc.o.d"
  "CMakeFiles/vscale_hypervisor.dir/machine.cc.o"
  "CMakeFiles/vscale_hypervisor.dir/machine.cc.o.d"
  "CMakeFiles/vscale_hypervisor.dir/toolstack.cc.o"
  "CMakeFiles/vscale_hypervisor.dir/toolstack.cc.o.d"
  "CMakeFiles/vscale_hypervisor.dir/vscale_channel.cc.o"
  "CMakeFiles/vscale_hypervisor.dir/vscale_channel.cc.o.d"
  "libvscale_hypervisor.a"
  "libvscale_hypervisor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vscale_hypervisor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
