# Empty dependencies file for vscale_hypervisor.
# This may be replaced when dependencies are built.
