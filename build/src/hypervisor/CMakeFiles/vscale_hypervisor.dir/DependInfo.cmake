
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/hypervisor/domain.cc" "src/hypervisor/CMakeFiles/vscale_hypervisor.dir/domain.cc.o" "gcc" "src/hypervisor/CMakeFiles/vscale_hypervisor.dir/domain.cc.o.d"
  "/root/repo/src/hypervisor/hotplug_model.cc" "src/hypervisor/CMakeFiles/vscale_hypervisor.dir/hotplug_model.cc.o" "gcc" "src/hypervisor/CMakeFiles/vscale_hypervisor.dir/hotplug_model.cc.o.d"
  "/root/repo/src/hypervisor/machine.cc" "src/hypervisor/CMakeFiles/vscale_hypervisor.dir/machine.cc.o" "gcc" "src/hypervisor/CMakeFiles/vscale_hypervisor.dir/machine.cc.o.d"
  "/root/repo/src/hypervisor/toolstack.cc" "src/hypervisor/CMakeFiles/vscale_hypervisor.dir/toolstack.cc.o" "gcc" "src/hypervisor/CMakeFiles/vscale_hypervisor.dir/toolstack.cc.o.d"
  "/root/repo/src/hypervisor/vscale_channel.cc" "src/hypervisor/CMakeFiles/vscale_hypervisor.dir/vscale_channel.cc.o" "gcc" "src/hypervisor/CMakeFiles/vscale_hypervisor.dir/vscale_channel.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/vscale_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/base/CMakeFiles/vscale_base.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
