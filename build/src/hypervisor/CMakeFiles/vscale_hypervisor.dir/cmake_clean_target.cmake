file(REMOVE_RECURSE
  "libvscale_hypervisor.a"
)
