file(REMOVE_RECURSE
  "libvscale_workloads.a"
)
