# Empty dependencies file for vscale_workloads.
# This may be replaced when dependencies are built.
