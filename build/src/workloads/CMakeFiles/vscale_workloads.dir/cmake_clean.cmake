file(REMOVE_RECURSE
  "CMakeFiles/vscale_workloads.dir/adaptive_app.cc.o"
  "CMakeFiles/vscale_workloads.dir/adaptive_app.cc.o.d"
  "CMakeFiles/vscale_workloads.dir/background.cc.o"
  "CMakeFiles/vscale_workloads.dir/background.cc.o.d"
  "CMakeFiles/vscale_workloads.dir/campaign.cc.o"
  "CMakeFiles/vscale_workloads.dir/campaign.cc.o.d"
  "CMakeFiles/vscale_workloads.dir/omp_app.cc.o"
  "CMakeFiles/vscale_workloads.dir/omp_app.cc.o.d"
  "CMakeFiles/vscale_workloads.dir/pthread_app.cc.o"
  "CMakeFiles/vscale_workloads.dir/pthread_app.cc.o.d"
  "CMakeFiles/vscale_workloads.dir/testbed.cc.o"
  "CMakeFiles/vscale_workloads.dir/testbed.cc.o.d"
  "CMakeFiles/vscale_workloads.dir/web_server.cc.o"
  "CMakeFiles/vscale_workloads.dir/web_server.cc.o.d"
  "libvscale_workloads.a"
  "libvscale_workloads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vscale_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
