
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workloads/adaptive_app.cc" "src/workloads/CMakeFiles/vscale_workloads.dir/adaptive_app.cc.o" "gcc" "src/workloads/CMakeFiles/vscale_workloads.dir/adaptive_app.cc.o.d"
  "/root/repo/src/workloads/background.cc" "src/workloads/CMakeFiles/vscale_workloads.dir/background.cc.o" "gcc" "src/workloads/CMakeFiles/vscale_workloads.dir/background.cc.o.d"
  "/root/repo/src/workloads/campaign.cc" "src/workloads/CMakeFiles/vscale_workloads.dir/campaign.cc.o" "gcc" "src/workloads/CMakeFiles/vscale_workloads.dir/campaign.cc.o.d"
  "/root/repo/src/workloads/omp_app.cc" "src/workloads/CMakeFiles/vscale_workloads.dir/omp_app.cc.o" "gcc" "src/workloads/CMakeFiles/vscale_workloads.dir/omp_app.cc.o.d"
  "/root/repo/src/workloads/pthread_app.cc" "src/workloads/CMakeFiles/vscale_workloads.dir/pthread_app.cc.o" "gcc" "src/workloads/CMakeFiles/vscale_workloads.dir/pthread_app.cc.o.d"
  "/root/repo/src/workloads/testbed.cc" "src/workloads/CMakeFiles/vscale_workloads.dir/testbed.cc.o" "gcc" "src/workloads/CMakeFiles/vscale_workloads.dir/testbed.cc.o.d"
  "/root/repo/src/workloads/web_server.cc" "src/workloads/CMakeFiles/vscale_workloads.dir/web_server.cc.o" "gcc" "src/workloads/CMakeFiles/vscale_workloads.dir/web_server.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/vscale/CMakeFiles/vscale_core.dir/DependInfo.cmake"
  "/root/repo/build/src/metrics/CMakeFiles/vscale_metrics.dir/DependInfo.cmake"
  "/root/repo/build/src/guest/CMakeFiles/vscale_guest.dir/DependInfo.cmake"
  "/root/repo/build/src/hypervisor/CMakeFiles/vscale_hypervisor.dir/DependInfo.cmake"
  "/root/repo/build/src/base/CMakeFiles/vscale_base.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/vscale_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
