# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(base_test "/root/repo/build/tests/base_test")
set_tests_properties(base_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;8;add_test;/root/repo/tests/CMakeLists.txt;11;vscale_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(sim_test "/root/repo/build/tests/sim_test")
set_tests_properties(sim_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;8;add_test;/root/repo/tests/CMakeLists.txt;12;vscale_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(hypervisor_test "/root/repo/build/tests/hypervisor_test")
set_tests_properties(hypervisor_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;8;add_test;/root/repo/tests/CMakeLists.txt;13;vscale_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(guest_test "/root/repo/build/tests/guest_test")
set_tests_properties(guest_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;8;add_test;/root/repo/tests/CMakeLists.txt;14;vscale_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(sync_test "/root/repo/build/tests/sync_test")
set_tests_properties(sync_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;8;add_test;/root/repo/tests/CMakeLists.txt;15;vscale_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(vscale_test "/root/repo/build/tests/vscale_test")
set_tests_properties(vscale_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;8;add_test;/root/repo/tests/CMakeLists.txt;16;vscale_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(workloads_test "/root/repo/build/tests/workloads_test")
set_tests_properties(workloads_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;8;add_test;/root/repo/tests/CMakeLists.txt;17;vscale_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(integration_test "/root/repo/build/tests/integration_test")
set_tests_properties(integration_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;8;add_test;/root/repo/tests/CMakeLists.txt;18;vscale_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(stress_test "/root/repo/build/tests/stress_test")
set_tests_properties(stress_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;8;add_test;/root/repo/tests/CMakeLists.txt;19;vscale_add_test;/root/repo/tests/CMakeLists.txt;0;")
