# Empty dependencies file for vscale_test.
# This may be replaced when dependencies are built.
