file(REMOVE_RECURSE
  "CMakeFiles/vscale_test.dir/vscale_test.cc.o"
  "CMakeFiles/vscale_test.dir/vscale_test.cc.o.d"
  "vscale_test"
  "vscale_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vscale_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
