file(REMOVE_RECURSE
  "CMakeFiles/bench_table1_channel.dir/bench_table1_channel.cc.o"
  "CMakeFiles/bench_table1_channel.dir/bench_table1_channel.cc.o.d"
  "bench_table1_channel"
  "bench_table1_channel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table1_channel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
