file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_ceiling.dir/bench_ablation_ceiling.cc.o"
  "CMakeFiles/bench_ablation_ceiling.dir/bench_ablation_ceiling.cc.o.d"
  "bench_ablation_ceiling"
  "bench_ablation_ceiling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_ceiling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
