# Empty compiler generated dependencies file for bench_fig13_parsec_ipi.
# This may be replaced when dependencies are built.
