file(REMOVE_RECURSE
  "CMakeFiles/bench_fig13_parsec_ipi.dir/bench_fig13_parsec_ipi.cc.o"
  "CMakeFiles/bench_fig13_parsec_ipi.dir/bench_fig13_parsec_ipi.cc.o.d"
  "bench_fig13_parsec_ipi"
  "bench_fig13_parsec_ipi.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig13_parsec_ipi.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
