file(REMOVE_RECURSE
  "CMakeFiles/bench_fig4_toolstack.dir/bench_fig4_toolstack.cc.o"
  "CMakeFiles/bench_fig4_toolstack.dir/bench_fig4_toolstack.cc.o.d"
  "bench_fig4_toolstack"
  "bench_fig4_toolstack.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4_toolstack.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
