# Empty dependencies file for bench_fig4_toolstack.
# This may be replaced when dependencies are built.
