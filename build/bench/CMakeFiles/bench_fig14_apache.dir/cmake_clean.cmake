file(REMOVE_RECURSE
  "CMakeFiles/bench_fig14_apache.dir/bench_fig14_apache.cc.o"
  "CMakeFiles/bench_fig14_apache.dir/bench_fig14_apache.cc.o.d"
  "bench_fig14_apache"
  "bench_fig14_apache.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig14_apache.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
