file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_adaptive_app.dir/bench_ablation_adaptive_app.cc.o"
  "CMakeFiles/bench_ablation_adaptive_app.dir/bench_ablation_adaptive_app.cc.o.d"
  "bench_ablation_adaptive_app"
  "bench_ablation_adaptive_app.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_adaptive_app.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
