# Empty dependencies file for bench_ablation_adaptive_app.
# This may be replaced when dependencies are built.
