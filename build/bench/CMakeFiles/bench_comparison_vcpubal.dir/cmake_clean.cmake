file(REMOVE_RECURSE
  "CMakeFiles/bench_comparison_vcpubal.dir/bench_comparison_vcpubal.cc.o"
  "CMakeFiles/bench_comparison_vcpubal.dir/bench_comparison_vcpubal.cc.o.d"
  "bench_comparison_vcpubal"
  "bench_comparison_vcpubal.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_comparison_vcpubal.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
