# Empty compiler generated dependencies file for bench_comparison_vcpubal.
# This may be replaced when dependencies are built.
