# Empty compiler generated dependencies file for bench_fig7_npb_8vcpu.
# This may be replaced when dependencies are built.
