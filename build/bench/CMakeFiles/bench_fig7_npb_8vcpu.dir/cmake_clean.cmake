file(REMOVE_RECURSE
  "CMakeFiles/bench_fig7_npb_8vcpu.dir/bench_fig7_npb_8vcpu.cc.o"
  "CMakeFiles/bench_fig7_npb_8vcpu.dir/bench_fig7_npb_8vcpu.cc.o.d"
  "bench_fig7_npb_8vcpu"
  "bench_fig7_npb_8vcpu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig7_npb_8vcpu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
