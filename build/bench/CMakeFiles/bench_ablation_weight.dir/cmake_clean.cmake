file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_weight.dir/bench_ablation_weight.cc.o"
  "CMakeFiles/bench_ablation_weight.dir/bench_ablation_weight.cc.o.d"
  "bench_ablation_weight"
  "bench_ablation_weight.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_weight.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
