# Empty compiler generated dependencies file for bench_ablation_weight.
# This may be replaced when dependencies are built.
