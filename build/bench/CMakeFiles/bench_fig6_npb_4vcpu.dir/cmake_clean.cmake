file(REMOVE_RECURSE
  "CMakeFiles/bench_fig6_npb_4vcpu.dir/bench_fig6_npb_4vcpu.cc.o"
  "CMakeFiles/bench_fig6_npb_4vcpu.dir/bench_fig6_npb_4vcpu.cc.o.d"
  "bench_fig6_npb_4vcpu"
  "bench_fig6_npb_4vcpu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6_npb_4vcpu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
