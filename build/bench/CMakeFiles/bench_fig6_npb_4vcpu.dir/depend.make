# Empty dependencies file for bench_fig6_npb_4vcpu.
# This may be replaced when dependencies are built.
