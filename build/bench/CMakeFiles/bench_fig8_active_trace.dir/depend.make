# Empty dependencies file for bench_fig8_active_trace.
# This may be replaced when dependencies are built.
