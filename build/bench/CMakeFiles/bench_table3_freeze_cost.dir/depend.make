# Empty dependencies file for bench_table3_freeze_cost.
# This may be replaced when dependencies are built.
