file(REMOVE_RECURSE
  "CMakeFiles/bench_table2_quiescence.dir/bench_table2_quiescence.cc.o"
  "CMakeFiles/bench_table2_quiescence.dir/bench_table2_quiescence.cc.o.d"
  "bench_table2_quiescence"
  "bench_table2_quiescence.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table2_quiescence.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
