# Empty compiler generated dependencies file for bench_fig10_npb_ipi.
# This may be replaced when dependencies are built.
