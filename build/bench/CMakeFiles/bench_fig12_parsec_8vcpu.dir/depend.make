# Empty dependencies file for bench_fig12_parsec_8vcpu.
# This may be replaced when dependencies are built.
