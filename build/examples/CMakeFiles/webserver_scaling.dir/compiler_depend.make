# Empty compiler generated dependencies file for webserver_scaling.
# This may be replaced when dependencies are built.
