file(REMOVE_RECURSE
  "CMakeFiles/npb_campaign.dir/npb_campaign.cpp.o"
  "CMakeFiles/npb_campaign.dir/npb_campaign.cpp.o.d"
  "npb_campaign"
  "npb_campaign.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/npb_campaign.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
