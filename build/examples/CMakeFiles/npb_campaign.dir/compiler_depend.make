# Empty compiler generated dependencies file for npb_campaign.
# This may be replaced when dependencies are built.
