file(REMOVE_RECURSE
  "CMakeFiles/consolidation_scenario.dir/consolidation_scenario.cpp.o"
  "CMakeFiles/consolidation_scenario.dir/consolidation_scenario.cpp.o.d"
  "consolidation_scenario"
  "consolidation_scenario.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/consolidation_scenario.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
