# Empty compiler generated dependencies file for consolidation_scenario.
# This may be replaced when dependencies are built.
