// Consolidation scenario: walks through the paper's core story on one machine.
//
// A 4-vCPU VM runs a synchronization-heavy OpenMP job while ten bursty virtual
// desktops come and go. The example traces, second by second, the VM's active vCPU
// count (vScale's decision), its CPU extendability, and its accumulated scheduling
// delay — the live version of the paper's Figures 8 and 9.
//
//   $ ./examples/consolidation_scenario [seconds]

#include <cstdio>
#include <cstdlib>

#include "src/base/table.h"
#include "src/metrics/run_metrics.h"
#include "src/workloads/omp_app.h"
#include "src/workloads/testbed.h"

using namespace vscale;

int main(int argc, char** argv) {
  const int seconds = argc > 1 ? std::atoi(argv[1]) : 12;

  TestbedConfig cfg;
  cfg.policy = Policy::kVscale;
  cfg.primary_vcpus = 4;
  cfg.seed = 2026;
  Testbed bed(cfg);

  std::printf("Consolidation scenario: 4-vCPU VM + %d bursty desktops on %d pCPUs\n\n",
              bed.config().background_vms, bed.machine().n_pcpus());

  // Observe the daemon's decisions.
  int last_active = 4;
  bed.daemon()->on_cycle = [&](TimeNs, int active) { last_active = active; };

  // A long-running synchronization-heavy job.
  OmpAppConfig ac = NpbProfile("lu", 4, kSpinCountActive);
  ac.intervals = 1'000'000;
  OmpApp app(bed.primary(), ac, 7);
  bed.sim().RunUntil(Milliseconds(200));
  app.Start();

  TextTable table({"t (s)", "active vCPUs", "extendability (pCPUs)",
                   "VM wait so far (ms)", "thread migrations"});
  for (int s = 1; s <= seconds; ++s) {
    bed.sim().RunUntil(Milliseconds(200) + Seconds(s));
    int64_t migrations = 0;
    for (const auto& t : bed.primary().threads()) {
      migrations += t->migrations;
    }
    table.AddRow({TextTable::Int(s), TextTable::Int(last_active),
                  TextTable::Num(ToSeconds(bed.primary_domain().extendability_ns) /
                                     ToSeconds(bed.ticker()->period()),
                                 2),
                  TextTable::Num(ToMilliseconds(bed.PrimaryWaitTime()), 1),
                  TextTable::Int(migrations)});
  }
  table.Print();

  std::printf("\nfreezes: %lld, unfreezes: %lld, daemon channel reads: %lld\n",
              static_cast<long long>(bed.daemon()->balancer().freezes()),
              static_cast<long long>(bed.daemon()->balancer().unfreezes()),
              static_cast<long long>(bed.daemon()->channel().reads()));
  std::printf("scheduling-delay distribution: %s\n",
              bed.primary_domain().wait_histogram.Summary().c_str());
  return 0;
}
