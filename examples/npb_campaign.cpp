// Mini campaign: one NPB app across all four configurations and all three OpenMP
// wait policies — the per-app slice of the paper's Figure 6, runnable in seconds.
//
//   $ ./examples/npb_campaign [app] [vcpus]

#include <cstdio>
#include <string>

#include "src/base/table.h"
#include "src/workloads/campaign.h"

using namespace vscale;

int main(int argc, char** argv) {
  const std::string app = argc > 1 ? argv[1] : "cg";
  const int vcpus = argc > 2 ? std::atoi(argv[2]) : 4;

  CampaignConfig cfg;
  cfg.vcpus = vcpus;
  cfg.seeds = {42};

  std::printf("NPB '%s' on a %d-vCPU VM under all four configurations\n\n", app.c_str(),
              vcpus);

  TextTable table({"spin policy", "config", "exec time (s)", "normalized",
                   "VM wait (s)", "vIPIs/s/vCPU"});
  const struct {
    int64_t spin;
    const char* name;
  } kSpins[] = {{kSpinCountActive, "30B (ACTIVE)"},
                {kSpinCountDefault, "300K (default)"},
                {kSpinCountPassive, "0 (PASSIVE)"}};
  for (const auto& spin : kSpins) {
    std::vector<CellResult> cells;
    for (Policy policy : cfg.policies) {
      cells.push_back(RunNpbCell(cfg, app, spin.spin, policy));
    }
    for (const auto& c : cells) {
      table.AddRow({spin.name, ToString(c.policy),
                    TextTable::Num(ToSeconds(c.mean_duration), 3),
                    TextTable::Num(Normalized(cells, c), 2),
                    TextTable::Num(ToSeconds(c.mean_wait), 3),
                    TextTable::Num(c.ipis_per_vcpu_sec, 1)});
    }
  }
  table.Print();
  return 0;
}
