// Quickstart: build the paper's consolidated testbed, run one NPB-style application
// under vanilla Xen/Linux and under vScale, and compare execution time, scheduling
// delay (VM waiting time) and IPI load.
//
//   $ ./examples/quickstart [app] [vcpus] [--trace out.json] [--metrics out.csv]
//                           [--digest] [--faults <plan>] [--stall]
//                           [--stall-csv out.csv]
//
// --trace records both runs into the flight recorder and writes a Chrome trace_event
// JSON file (open it in ui.perfetto.dev); --metrics dumps the named counter/gauge
// registry as CSV (docs/OBSERVABILITY.md). --digest prints the 64-bit state
// digest of the pair of runs: identical invocations must print identical
// digests, in every build flavour (docs/CHECKING.md).
//
// --stall turns on stall attribution: per-vCPU exclusive-state time buckets,
// latency histograms and per-domain counter tracks in the trace. --stall-csv
// (implies --stall) writes the bucket time series for tools/stall_report:
//
//   $ ./examples/quickstart lu 4 --stall-csv stall.csv && ./tools/stall_report stall.csv
//
// --faults injects a deterministic fault plan (docs/FAULTS.md) into the vScale run
// (the baseline has no control plane to fault). Try a daemon stall mid-run and watch
// the watchdog trip, the VM get its safe floor back, and the daemon re-converge:
//
//   $ ./examples/quickstart lu 4 --faults 'stall@1s+2s'
//   $ ./examples/quickstart lu 4 --faults 'chan-stale@500ms+1s;crash@2s+1s'
//
// Demonstrates the core public API: Testbed (machine + guests + vScale wiring),
// OmpApp (workload), and the metric snapshot helpers.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "src/base/metrics_registry.h"
#include "src/base/table.h"
#include "src/base/trace.h"
#include "src/faults/fault_plan.h"
#include "src/metrics/run_metrics.h"
#include "src/metrics/state_digest.h"
#include "src/metrics/trace_export.h"
#include "src/obs/stall_accounting.h"
#include "src/workloads/omp_app.h"
#include "src/workloads/testbed.h"

namespace {

struct RunOutcome {
  vscale::TimeNs duration;
  vscale::TimeNs wait;
  double ipi_rate;
  bool finished;
  // Fault/recovery summary (vScale runs with a --faults plan only).
  int64_t faults_started = 0;
  int64_t read_retries = 0;
  int64_t stale_held = 0;
  int64_t degradations = 0;
  int64_t resumes = 0;
  int64_t watchdog_trips = 0;
  int64_t crashes = 0;
  int64_t restarts = 0;
  bool degraded_at_end = false;
};

RunOutcome RunOnce(vscale::Policy policy, const std::string& app_name, int vcpus,
                   uint64_t seed, vscale::StateDigest* digest,
                   const vscale::FaultPlan& faults, bool stall) {
  using namespace vscale;
  TestbedConfig cfg;
  cfg.policy = policy;
  cfg.primary_vcpus = vcpus;
  cfg.seed = seed;
  cfg.stall_accounting = stall;
  // Faults only make sense where there is a control plane to harden; the baseline
  // run stays clean so the comparison still shows vScale's healthy-path win.
  if (PolicyUsesVscale(policy)) {
    cfg.faults = faults;
  }
  Testbed bed(cfg);

  OmpAppConfig app_cfg = NpbProfile(app_name, vcpus, kSpinCountActive);
  OmpApp app(bed.primary(), app_cfg, seed ^ 0xA4450ULL);

  // Let the machine settle (daemon boots, desktops start), then launch the app.
  bed.sim().RunUntil(Milliseconds(200));
  const GuestCounters before = SnapshotCounters(bed.primary());
  app.Start();
  const bool finished =
      bed.RunUntil([&] { return app.done(); }, Seconds(600));
  const GuestCounters delta = SnapshotCounters(bed.primary()) - before;

  if (digest != nullptr) {
    digest->Absorb(app.duration());
    digest->AbsorbMachine(bed.machine());
    digest->AbsorbGuest(bed.primary());
  }

  RunOutcome out;
  out.finished = finished;
  out.duration = app.duration();
  out.wait = delta.domain_wait;
  out.ipi_rate = PerVcpuPerSecond(delta.resched_ipis, vcpus, app.duration());
  if (bed.faults() != nullptr && bed.daemon() != nullptr) {
    out.faults_started = bed.faults()->events_started();
    out.read_retries = bed.daemon()->read_retries();
    out.stale_held = bed.daemon()->stale_held_cycles();
    out.degradations = bed.daemon()->degradations();
    out.resumes = bed.daemon()->resumes();
    out.crashes = bed.daemon()->crashes();
    out.restarts = bed.daemon()->restarts();
    out.degraded_at_end = bed.daemon()->degraded();
    if (bed.watchdog() != nullptr) {
      out.watchdog_trips = bed.watchdog()->trips();
    }
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  std::string trace_path;
  std::string metrics_path;
  std::string stall_csv_path;
  bool want_digest = false;
  bool want_stall = false;
  vscale::FaultPlan faults;
  std::vector<std::string> positional;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--trace") == 0 || std::strcmp(argv[i], "--metrics") == 0 ||
        std::strcmp(argv[i], "--stall-csv") == 0) {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "usage: quickstart [app] [vcpus] [--trace out.json] "
                             "[--metrics out.csv] [--digest] [--faults <plan>] "
                             "[--stall] [--stall-csv out.csv]\n"
                             "%s requires a path\n",
                     argv[i]);
        return 2;
      }
      if (std::strcmp(argv[i], "--trace") == 0) {
        trace_path = argv[i + 1];
      } else if (std::strcmp(argv[i], "--metrics") == 0) {
        metrics_path = argv[i + 1];
      } else {
        stall_csv_path = argv[i + 1];
        want_stall = true;
      }
      ++i;
    } else if (std::strcmp(argv[i], "--digest") == 0) {
      want_digest = true;
    } else if (std::strcmp(argv[i], "--stall") == 0) {
      want_stall = true;
    } else if (std::strcmp(argv[i], "--faults") == 0) {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "--faults requires a plan, e.g. 'stall@1s+2s'\n");
        return 2;
      }
      std::string error;
      if (!vscale::ParseFaultPlan(argv[i + 1], &faults, &error)) {
        std::fprintf(stderr, "--faults: %s\n", error.c_str());
        return 2;
      }
      ++i;
    } else {
      positional.push_back(argv[i]);
    }
  }
  const std::string app = !positional.empty() ? positional[0] : "lu";
  const int vcpus = positional.size() > 1 ? std::atoi(positional[1].c_str()) : 4;

  if (!trace_path.empty()) {
    // Both runs (baseline then vScale) share one timeline; a larger ring keeps the
    // baseline window from being overwritten by the second run (~50 MB transient).
    vscale::GlobalTracer().SetCapacity(1u << 20);
    vscale::GlobalTracer().Enable();
  }

  std::printf("vScale quickstart: NPB '%s' on a %d-vCPU VM, 2 vCPUs per pCPU\n\n",
              app.c_str(), vcpus);

  vscale::StateDigest digest;
  vscale::StateDigest* d = want_digest ? &digest : nullptr;
  const RunOutcome base =
      RunOnce(vscale::Policy::kBaseline, app, vcpus, 42, d, faults, want_stall);
  const RunOutcome vs =
      RunOnce(vscale::Policy::kVscale, app, vcpus, 42, d, faults, want_stall);

  // Export observability artifacts before printing the comparison: the two runs sit
  // back to back on one timeline (the tracer rebases the second run's timestamps).
  if (!trace_path.empty()) {
    vscale::GlobalTracer().Disable();
    std::string error;
    if (vscale::WriteChromeTraceFile(vscale::GlobalTracer(), trace_path, &error)) {
      std::printf("trace: wrote %zu events to %s (%llu dropped by ring) — open in "
                  "ui.perfetto.dev\n",
                  vscale::GlobalTracer().size(), trace_path.c_str(),
                  static_cast<unsigned long long>(vscale::GlobalTracer().dropped()));
    } else {
      std::fprintf(stderr, "trace: %s\n", error.c_str());
    }
  }
  if (!metrics_path.empty()) {
    std::ofstream f(metrics_path);
    if (f) {
      vscale::MetricsRegistry::Global().WriteCsv(f);
      std::printf("metrics: wrote %zu metrics to %s\n",
                  vscale::MetricsRegistry::Global().size(), metrics_path.c_str());
    } else {
      std::fprintf(stderr, "metrics: cannot open %s\n", metrics_path.c_str());
    }
  }

  if (!stall_csv_path.empty()) {
    std::ofstream f(stall_csv_path);
    if (f) {
      vscale::StallAccountant::Global().WriteCsv(f);
      std::printf("stall: wrote bucket time series for both runs to %s — "
                  "summarize with tools/stall_report\n",
                  stall_csv_path.c_str());
    } else {
      std::fprintf(stderr, "stall: cannot open %s\n", stall_csv_path.c_str());
    }
  }

  if (want_digest) {
    // End-of-run registry state folds in, so metric drift also changes the digest.
    digest.AbsorbRegistry(vscale::MetricsRegistry::Global());
    std::printf("digest %s\n", digest.Hex().c_str());
  }

  vscale::TextTable table({"config", "exec time (s)", "VM wait (s)", "vIPIs/s/vCPU"});
  table.AddRow({"Xen/Linux", vscale::TextTable::Num(vscale::ToSeconds(base.duration), 3),
                vscale::TextTable::Num(vscale::ToSeconds(base.wait), 3),
                vscale::TextTable::Num(base.ipi_rate, 1)});
  table.AddRow({"vScale", vscale::TextTable::Num(vscale::ToSeconds(vs.duration), 3),
                vscale::TextTable::Num(vscale::ToSeconds(vs.wait), 3),
                vscale::TextTable::Num(vs.ipi_rate, 1)});
  table.Print();

  if (!faults.empty()) {
    std::printf("\nfault plan (%zu events, vScale run only): %lld injected; "
                "daemon: %lld read retries, %lld stale-held cycles, %lld "
                "degradations, %lld resumes, %lld crashes, %lld restarts; "
                "watchdog: %lld trips; end state: %s\n",
                faults.events.size(),
                static_cast<long long>(vs.faults_started),
                static_cast<long long>(vs.read_retries),
                static_cast<long long>(vs.stale_held),
                static_cast<long long>(vs.degradations),
                static_cast<long long>(vs.resumes),
                static_cast<long long>(vs.crashes),
                static_cast<long long>(vs.restarts),
                static_cast<long long>(vs.watchdog_trips),
                vs.degraded_at_end ? "DEGRADED" : "healthy");
  }

  if (!base.finished || !vs.finished) {
    std::printf("\nWARNING: a run hit the simulation deadline without finishing\n");
    return 1;
  }
  const double speedup = 1.0 - static_cast<double>(vs.duration) /
                                   static_cast<double>(base.duration);
  std::printf("\nvScale reduced execution time by %.1f%% and waiting time by %.1f%%\n",
              100.0 * speedup,
              100.0 * (1.0 - static_cast<double>(vs.wait) /
                                 static_cast<double>(base.wait)));
  return 0;
}
