// Quickstart: build the paper's consolidated testbed, run one NPB-style application
// under vanilla Xen/Linux and under vScale, and compare execution time, scheduling
// delay (VM waiting time) and IPI load.
//
//   $ ./examples/quickstart [app] [vcpus]
//
// Demonstrates the core public API: Testbed (machine + guests + vScale wiring),
// OmpApp (workload), and the metric snapshot helpers.

#include <cstdio>
#include <string>

#include "src/base/table.h"
#include "src/metrics/run_metrics.h"
#include "src/workloads/omp_app.h"
#include "src/workloads/testbed.h"

namespace {

struct RunOutcome {
  vscale::TimeNs duration;
  vscale::TimeNs wait;
  double ipi_rate;
  bool finished;
};

RunOutcome RunOnce(vscale::Policy policy, const std::string& app_name, int vcpus,
                   uint64_t seed) {
  using namespace vscale;
  TestbedConfig cfg;
  cfg.policy = policy;
  cfg.primary_vcpus = vcpus;
  cfg.seed = seed;
  Testbed bed(cfg);

  OmpAppConfig app_cfg = NpbProfile(app_name, vcpus, kSpinCountActive);
  OmpApp app(bed.primary(), app_cfg, seed ^ 0xA4450ULL);

  // Let the machine settle (daemon boots, desktops start), then launch the app.
  bed.sim().RunUntil(Milliseconds(200));
  const GuestCounters before = SnapshotCounters(bed.primary());
  app.Start();
  const bool finished =
      bed.RunUntil([&] { return app.done(); }, Seconds(600));
  const GuestCounters delta = SnapshotCounters(bed.primary()) - before;

  RunOutcome out;
  out.finished = finished;
  out.duration = app.duration();
  out.wait = delta.domain_wait;
  out.ipi_rate = PerVcpuPerSecond(delta.resched_ipis, vcpus, app.duration());
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  const std::string app = argc > 1 ? argv[1] : "lu";
  const int vcpus = argc > 2 ? std::atoi(argv[2]) : 4;

  std::printf("vScale quickstart: NPB '%s' on a %d-vCPU VM, 2 vCPUs per pCPU\n\n",
              app.c_str(), vcpus);

  const RunOutcome base = RunOnce(vscale::Policy::kBaseline, app, vcpus, 42);
  const RunOutcome vs = RunOnce(vscale::Policy::kVscale, app, vcpus, 42);

  vscale::TextTable table({"config", "exec time (s)", "VM wait (s)", "vIPIs/s/vCPU"});
  table.AddRow({"Xen/Linux", vscale::TextTable::Num(vscale::ToSeconds(base.duration), 3),
                vscale::TextTable::Num(vscale::ToSeconds(base.wait), 3),
                vscale::TextTable::Num(base.ipi_rate, 1)});
  table.AddRow({"vScale", vscale::TextTable::Num(vscale::ToSeconds(vs.duration), 3),
                vscale::TextTable::Num(vscale::ToSeconds(vs.wait), 3),
                vscale::TextTable::Num(vs.ipi_rate, 1)});
  table.Print();

  if (!base.finished || !vs.finished) {
    std::printf("\nWARNING: a run hit the simulation deadline without finishing\n");
    return 1;
  }
  const double speedup = 1.0 - static_cast<double>(vs.duration) /
                                   static_cast<double>(base.duration);
  std::printf("\nvScale reduced execution time by %.1f%% and waiting time by %.1f%%\n",
              100.0 * speedup,
              100.0 * (1.0 - static_cast<double>(vs.wait) /
                                 static_cast<double>(base.wait)));
  return 0;
}
