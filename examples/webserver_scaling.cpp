// I/O scenario: an Apache-like web server inside a consolidated VM, with and without
// vScale, at a chosen request rate — the live version of the paper's Figure 14 and of
// its Figure 1(c) motivation (delayed I/O interrupt processing).
//
//   $ ./examples/webserver_scaling [rate_per_sec] [seconds]

#include <cstdio>
#include <cstdlib>

#include "src/base/table.h"
#include "src/workloads/testbed.h"
#include "src/workloads/web_server.h"

using namespace vscale;

namespace {

struct Outcome {
  double reply_rate;
  double conn_p50_ms;
  double conn_p99_ms;
  double resp_p50_ms;
  double resp_p99_ms;
  int64_t drops;
};

Outcome RunOne(Policy policy, double rate, int seconds, uint64_t seed) {
  TestbedConfig cfg;
  cfg.policy = policy;
  cfg.primary_vcpus = 4;
  cfg.seed = seed;
  Testbed bed(cfg);

  WebServer server(bed.primary(), bed.sim(), WebServerConfig{}, seed + 1);
  server.Start();
  HttperfClient client(server, bed.sim(), rate, seed + 2);
  bed.sim().RunUntil(Milliseconds(300));
  client.Run(bed.sim().Now(), Seconds(seconds));
  bed.sim().RunUntil(Milliseconds(300) + Seconds(seconds) + Seconds(1));

  const WebServer::Stats& s = server.stats();
  Outcome o;
  o.reply_rate = static_cast<double>(s.replies) / (seconds + 1);
  o.conn_p50_ms = s.connection_time_us.Quantile(0.5) / 1000.0;
  o.conn_p99_ms = s.connection_time_us.Quantile(0.99) / 1000.0;
  o.resp_p50_ms = s.response_time_us.Quantile(0.5) / 1000.0;
  o.resp_p99_ms = s.response_time_us.Quantile(0.99) / 1000.0;
  o.drops = s.drops;
  return o;
}

}  // namespace

int main(int argc, char** argv) {
  const double rate = argc > 1 ? std::atof(argv[1]) : 5000.0;
  const int seconds = argc > 2 ? std::atoi(argv[2]) : 30;

  std::printf("Web server under consolidation: %.0f req/s for %d s, 16 KB replies\n\n",
              rate, seconds);

  TextTable table({"config", "replies/s", "conn p50/p99 (ms)", "resp p50/p99 (ms)",
                   "drops"});
  for (Policy policy : {Policy::kBaseline, Policy::kBaselinePvlock, Policy::kVscale,
                        Policy::kVscalePvlock}) {
    const Outcome o = RunOne(policy, rate, seconds, 99);
    table.AddRow({ToString(policy), TextTable::Num(o.reply_rate, 0),
                  TextTable::Num(o.conn_p50_ms, 2) + " / " +
                      TextTable::Num(o.conn_p99_ms, 2),
                  TextTable::Num(o.resp_p50_ms, 2) + " / " +
                      TextTable::Num(o.resp_p99_ms, 2),
                  TextTable::Int(o.drops)});
  }
  table.Print();
  std::printf(
      "\nThe baseline's connection time reflects I/O interrupts landing on preempted\n"
      "vCPUs (paper Figure 1(c)); vScale keeps the interrupt-receiving vCPU running.\n");
  return 0;
}
